//! Round-trip record encoder: re-emits a (possibly filtered) record stream.
//!
//! [`RecordEncoder`] is the write side of [`RecordReader`](crate::iter::RecordReader):
//! records stream out in the same text format they stream in, so
//! read → filter → encode pipelines are byte-identical for the records
//! that pass the filter.
//!
//! ```
//! use arp_formats::encode::RecordEncoder;
//! use arp_formats::iter::{Record, RecordReader};
//! use arp_formats::types::{Component, MotionTriple, RecordHeader};
//! use arp_formats::v1::V1ComponentFile;
//!
//! let rec = V1ComponentFile {
//!     header: RecordHeader::new("SSLB", "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap(),
//!     component: Component::Vertical,
//!     data: MotionTriple::from_acceleration(vec![0.0, 1.0], 0.01).unwrap(),
//! };
//! let original = rec.to_text();
//!
//! // Stream the record through reader → encoder; bytes survive untouched.
//! let mut out: Vec<u8> = Vec::new();
//! let mut enc = RecordEncoder::new(&mut out);
//! for rec in RecordReader::new(original.as_bytes()) {
//!     enc.write_record(&rec.unwrap()).unwrap();
//! }
//! enc.finish().unwrap();
//! assert_eq!(out, original.as_bytes());
//! ```

use crate::error::FormatError;
use crate::iter::Record;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Streams records back out in the canonical text format.
pub struct RecordEncoder<W: Write> {
    sink: W,
    path: Option<PathBuf>,
    records_written: usize,
}

impl RecordEncoder<BufWriter<File>> {
    /// Creates (or truncates) `path` and encodes into it, creating parent
    /// directories as needed.
    pub fn create(path: &Path) -> Result<Self, FormatError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| FormatError::io(path, e))?;
            }
        }
        let file = File::create(path).map_err(|e| FormatError::io(path, e))?;
        let mut enc = RecordEncoder::new(BufWriter::new(file));
        enc.path = Some(path.to_path_buf());
        Ok(enc)
    }
}

impl<W: Write> RecordEncoder<W> {
    /// Encodes into any writer.
    pub fn new(sink: W) -> Self {
        RecordEncoder {
            sink,
            path: None,
            records_written: 0,
        }
    }

    fn io_err(&self, e: std::io::Error) -> FormatError {
        let path = self
            .path
            .clone()
            .unwrap_or_else(|| PathBuf::from("<stream>"));
        FormatError::io(path, e)
    }

    /// Appends one record to the stream.
    pub fn write_record(&mut self, record: &Record) -> Result<(), FormatError> {
        self.sink
            .write_all(record.to_text().as_bytes())
            .map_err(|e| self.io_err(e))?;
        self.records_written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> usize {
        self.records_written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, FormatError> {
        self.sink.flush().map_err(|e| self.io_err(e))?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::iter::RecordReader;
    use crate::types::{Component, MotionTriple, RecordHeader};
    use crate::v1::V1ComponentFile;

    fn v1c(station: &str, n: usize) -> V1ComponentFile {
        let acc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        V1ComponentFile {
            header: RecordHeader::new(station, "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap(),
            component: Component::Longitudinal,
            data: MotionTriple::from_acceleration(acc, 0.01).unwrap(),
        }
    }

    #[test]
    fn filtered_stream_keeps_surviving_bytes_identical() {
        let keep = v1c("KEEP", 10).to_text();
        let drop = v1c("DROP", 10).to_text();
        let stream = format!("{drop}{keep}{drop}");
        let mut out = Vec::new();
        let mut enc = RecordEncoder::new(&mut out);
        for rec in
            RecordReader::new(stream.as_bytes()).with_filters(vec![Filter::Station("KEEP".into())])
        {
            enc.write_record(&rec.unwrap()).unwrap();
        }
        assert_eq!(enc.records_written(), 1);
        enc.finish().unwrap();
        assert_eq!(out, keep.as_bytes());
    }

    #[test]
    fn create_writes_to_disk_with_parents() {
        let dir = std::env::temp_dir().join(format!("arp-enc-{}", std::process::id()));
        let path = dir.join("nested/out.v1");
        let rec = crate::iter::Record::V1Component(v1c("AAAA", 4));
        let mut enc = RecordEncoder::create(&path).unwrap();
        enc.write_record(&rec).unwrap();
        enc.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), rec.to_text());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
