//! Event catalog — the observatory's monthly bulletin format.
//!
//! The Salvadoran observatory publishes monthly seismic-activity bulletins
//! (the paper cites the December 2023 report: 241 events). A catalog lists
//! events with their origin times, magnitudes, and the stations that
//! recorded them; the batch driver uses it to associate input directories
//! with event metadata, and the summary exporter embeds its rows.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_kv, write_magic, Scanner};
use std::io::BufRead;
use std::path::Path;

/// One cataloged seismic event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CatalogEntry {
    /// Event identifier (unique within the catalog).
    pub id: String,
    /// Origin time, ISO-8601 text.
    pub origin_time: String,
    /// Moment magnitude.
    pub magnitude: f64,
    /// Epicenter latitude (degrees).
    pub latitude: f64,
    /// Epicenter longitude (degrees).
    pub longitude: f64,
    /// Hypocentral depth (km).
    pub depth_km: f64,
    /// Station codes that recorded the event.
    pub stations: Vec<String>,
}

impl CatalogEntry {
    /// Validates ranges: magnitude, coordinates, depth, station codes.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.id.is_empty() || self.id.contains(char::is_whitespace) {
            return Err(FormatError::InvalidValue(format!(
                "bad event id {:?}",
                self.id
            )));
        }
        if !(-2.0..=10.0).contains(&self.magnitude) {
            return Err(FormatError::InvalidValue(format!(
                "magnitude {} out of range",
                self.magnitude
            )));
        }
        if !(-90.0..=90.0).contains(&self.latitude) || !(-180.0..=180.0).contains(&self.longitude) {
            return Err(FormatError::InvalidValue(format!(
                "bad epicenter ({}, {})",
                self.latitude, self.longitude
            )));
        }
        if !(0.0..=700.0).contains(&self.depth_km) {
            return Err(FormatError::InvalidValue(format!(
                "depth {} km out of range",
                self.depth_km
            )));
        }
        for s in &self.stations {
            if s.is_empty() || !s.chars().all(|c| c.is_ascii_alphanumeric()) {
                return Err(FormatError::InvalidValue(format!("bad station code {s:?}")));
            }
        }
        Ok(())
    }
}

/// A catalog: an ordered list of events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Catalog {
    /// Events in catalog order (typically chronological).
    pub entries: Vec<CatalogEntry>,
}

impl Catalog {
    const MAGIC: &'static str = "ARP-CATALOG";

    /// Looks up an event by id.
    pub fn find(&self, id: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Events with magnitude at or above the threshold.
    pub fn at_least_magnitude(&self, m: f64) -> Vec<&CatalogEntry> {
        self.entries.iter().filter(|e| e.magnitude >= m).collect()
    }

    /// Validates every entry and id uniqueness.
    pub fn validate(&self) -> Result<(), FormatError> {
        let mut ids = std::collections::BTreeSet::new();
        for e in &self.entries {
            e.validate()?;
            if !ids.insert(&e.id) {
                return Err(FormatError::InvalidValue(format!(
                    "duplicate event id {:?}",
                    e.id
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the text format: one `EVENT:` line per event followed
    /// by its station list.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        write_kv(&mut out, "COUNT", self.entries.len());
        for e in &self.entries {
            out.push_str(&format!(
                "EVENT: {} {} {:.2} {:.5} {:.5} {:.1}\n",
                e.id, e.origin_time, e.magnitude, e.latitude, e.longitude, e.depth_km
            ));
            out.push_str(&format!("STATIONS: {}\n", e.stations.join(" ")));
        }
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let count = sc.expect_kv_usize("COUNT")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let ln = sc.line_number();
            let line = sc.expect_kv("EVENT")?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 6 {
                return Err(FormatError::syntax(
                    ln,
                    format!("EVENT needs `id origin mag lat lon depth`, got {line:?}"),
                ));
            }
            let num = |s: &str, what: &str| -> Result<f64, FormatError> {
                s.parse()
                    .map_err(|e| FormatError::syntax(ln, format!("bad {what} {s:?}: {e}")))
            };
            let stations_line = sc.expect_kv("STATIONS")?;
            let stations = stations_line
                .split_whitespace()
                .map(str::to_string)
                .collect();
            entries.push(CatalogEntry {
                id: parts[0].to_string(),
                origin_time: parts[1].to_string(),
                magnitude: num(parts[2], "magnitude")?,
                latitude: num(parts[3], "latitude")?,
                longitude: num(parts[4], "longitude")?,
                depth_km: num(parts[5], "depth")?,
                stations,
            });
        }
        let catalog = Catalog { entries };
        catalog.validate()?;
        Ok(catalog)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, mag: f64) -> CatalogEntry {
        CatalogEntry {
            id: id.to_string(),
            origin_time: "2019-07-31T03:04:05Z".into(),
            magnitude: mag,
            latitude: 13.7,
            longitude: -89.2,
            depth_km: 12.0,
            stations: vec!["SSLB".into(), "QCAL".into()],
        }
    }

    #[test]
    fn roundtrip() {
        let cat = Catalog {
            entries: vec![entry("EV1", 4.8), entry("EV2", 6.2)],
        };
        let back = Catalog::from_text(&cat.to_text()).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.find("EV2").unwrap().magnitude, 6.2);
        assert!(back.find("NOPE").is_none());
        assert_eq!(back.entries[0].stations, vec!["SSLB", "QCAL"]);
    }

    #[test]
    fn magnitude_filter() {
        let cat = Catalog {
            entries: vec![entry("A", 3.0), entry("B", 5.5), entry("C", 6.0)],
        };
        let big = cat.at_least_magnitude(5.0);
        assert_eq!(big.len(), 2);
        assert_eq!(big[0].id, "B");
    }

    #[test]
    fn validation_catches_bad_entries() {
        let mut bad = entry("X", 4.0);
        bad.magnitude = 12.0;
        assert!(bad.validate().is_err());
        let mut bad = entry("X", 4.0);
        bad.latitude = 91.0;
        assert!(bad.validate().is_err());
        let mut bad = entry("X", 4.0);
        bad.depth_km = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = entry("X", 4.0);
        bad.stations = vec!["has space".into()];
        assert!(bad.validate().is_err());
        let mut bad = entry("X", 4.0);
        bad.id = "two words".into();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let cat = Catalog {
            entries: vec![entry("SAME", 4.0), entry("SAME", 5.0)],
        };
        assert!(cat.validate().is_err());
        assert!(Catalog::from_text(&cat.to_text()).is_err());
    }

    #[test]
    fn empty_station_list_roundtrips() {
        let mut e = entry("LONE", 4.0);
        e.stations.clear();
        let cat = Catalog { entries: vec![e] };
        let back = Catalog::from_text(&cat.to_text()).unwrap();
        assert!(back.entries[0].stations.is_empty());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("arp-cat-{}", std::process::id()));
        let cat = Catalog {
            entries: vec![entry("EV1", 4.8)],
        };
        let p = dir.join("catalog.txt");
        cat.write(&p).unwrap();
        assert_eq!(Catalog::read(&p).unwrap(), cat);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_lines_rejected() {
        let text = "ARP-CATALOG 1.0\nCOUNT: 1\nEVENT: X only three parts\nSTATIONS:\n";
        assert!(Catalog::from_text(text).is_err());
        let text2 = "ARP-CATALOG 1.0\nCOUNT: 1\nEVENT: X t notanumber 1 2 3\nSTATIONS:\n";
        assert!(Catalog::from_text(text2).is_err());
    }
}
