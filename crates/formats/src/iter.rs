//! Lazy, fallible record iterators over V1/V2/F/R streams.
//!
//! [`RecordReader`] pulls records out of any [`BufRead`] source — a single
//! product file, or a stream of concatenated records — parsing each record
//! only as it is reached. Combined with [`Filter`]s
//! it skips the body of non-matching records entirely: the header is parsed,
//! the filter decides, and a rejected record's numeric blocks are passed
//! over without a single float conversion.
//!
//! ```
//! use arp_formats::iter::{Record, RecordReader};
//! use arp_formats::types::{Component, MotionTriple, RecordHeader};
//! use arp_formats::v1::V1ComponentFile;
//!
//! let rec = V1ComponentFile {
//!     header: RecordHeader::new("SSLB", "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap(),
//!     component: Component::Vertical,
//!     data: MotionTriple::from_acceleration(vec![0.0, 1.0], 0.01).unwrap(),
//! };
//! // Two records concatenated into one stream.
//! let stream = format!("{}{}", rec.to_text(), rec.to_text());
//! let records: Vec<Record> = RecordReader::new(stream.as_bytes())
//!     .map(Result::unwrap)
//!     .collect();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].station(), "SSLB");
//! ```

use crate::error::FormatError;
use crate::ffile::{self, FFile};
use crate::filter::Filter;
use crate::numio::Scanner;
use crate::rfile::{self, RFile};
use crate::types::{names, Component};
use crate::v1::{self, V1ComponentFile, V1StationFile};
use crate::v2::{self, V2File};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// The record shapes a [`RecordReader`] can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// Raw multi-component station record (`ARP-V1S`).
    V1Station,
    /// Uncorrected single-component record (`ARP-V1C`).
    V1Component,
    /// Corrected record (`ARP-V2`).
    V2,
    /// Fourier spectrum (`ARP-F`).
    Fourier,
    /// Response spectrum (`ARP-R`).
    Response,
}

impl RecordKind {
    /// All kinds in pipeline order.
    pub const ALL: [RecordKind; 5] = [
        RecordKind::V1Station,
        RecordKind::V1Component,
        RecordKind::V2,
        RecordKind::Fourier,
        RecordKind::Response,
    ];

    /// The magic token that introduces this kind of record.
    pub fn magic(self) -> &'static str {
        match self {
            RecordKind::V1Station => v1::MAGIC_STATION,
            RecordKind::V1Component => v1::MAGIC_COMPONENT,
            RecordKind::V2 => v2::MAGIC,
            RecordKind::Fourier => ffile::MAGIC,
            RecordKind::Response => rfile::MAGIC,
        }
    }

    /// Maps a magic token back to a kind.
    pub fn from_magic(token: &str) -> Option<Self> {
        RecordKind::ALL.iter().copied().find(|k| k.magic() == token)
    }

    /// Short name used by `arp query --kind` (`v1s`, `v1c`, `v2`, `f`, `r`).
    pub fn short_name(self) -> &'static str {
        match self {
            RecordKind::V1Station => "v1s",
            RecordKind::V1Component => "v1c",
            RecordKind::V2 => "v2",
            RecordKind::Fourier => "f",
            RecordKind::Response => "r",
        }
    }

    /// Parses the short name (case-insensitive).
    pub fn from_short_name(s: &str) -> Result<Self, FormatError> {
        let lower = s.trim().to_ascii_lowercase();
        RecordKind::ALL
            .iter()
            .copied()
            .find(|k| k.short_name() == lower)
            .ok_or_else(|| FormatError::InvalidValue(format!("unknown record kind {s:?}")))
    }
}

/// One parsed record of any kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Raw multi-component station record.
    V1Station(V1StationFile),
    /// Uncorrected single-component record.
    V1Component(V1ComponentFile),
    /// Corrected record.
    V2(V2File),
    /// Fourier spectrum.
    Fourier(FFile),
    /// Response spectrum.
    Response(RFile),
}

impl Record {
    /// Which shape this record is.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::V1Station(_) => RecordKind::V1Station,
            Record::V1Component(_) => RecordKind::V1Component,
            Record::V2(_) => RecordKind::V2,
            Record::Fourier(_) => RecordKind::Fourier,
            Record::Response(_) => RecordKind::Response,
        }
    }

    /// Station code.
    pub fn station(&self) -> &str {
        match self {
            Record::V1Station(f) => &f.header.station,
            Record::V1Component(f) => &f.header.station,
            Record::V2(f) => &f.header.station,
            Record::Fourier(f) => &f.station,
            Record::Response(f) => &f.station,
        }
    }

    /// Event identifier.
    pub fn event_id(&self) -> &str {
        match self {
            Record::V1Station(f) => &f.header.event_id,
            Record::V1Component(f) => &f.header.event_id,
            Record::V2(f) => &f.header.event_id,
            Record::Fourier(f) => &f.event_id,
            Record::Response(f) => &f.event_id,
        }
    }

    /// Component, when the record holds exactly one.
    pub fn component(&self) -> Option<Component> {
        match self {
            Record::V1Station(_) => None,
            Record::V1Component(f) => Some(f.component),
            Record::V2(f) => Some(f.component),
            Record::Fourier(f) => Some(f.component),
            Record::Response(f) => Some(f.component),
        }
    }

    /// Peak ground acceleration, for records that store one (V2 only).
    pub fn pga(&self) -> Option<f64> {
        match self {
            Record::V2(f) => Some(f.peaks.pga),
            _ => None,
        }
    }

    /// Period grid, for response-spectrum records.
    pub fn periods(&self) -> Option<&[f64]> {
        match self {
            Record::Response(f) => f.spectra.first().map(|s| s.periods.as_slice()),
            _ => None,
        }
    }

    /// Number of stored samples: trace samples for time-series records,
    /// frequency bins for F files, period ordinates (×dampings) for R files.
    pub fn data_points(&self) -> usize {
        match self {
            Record::V1Station(f) => f.data_points(),
            Record::V1Component(f) => f.data.len(),
            Record::V2(f) => f.data.len(),
            Record::Fourier(f) => f.spectrum.len(),
            Record::Response(f) => f.spectra.iter().map(|s| s.periods.len()).sum(),
        }
    }

    /// Sampling interval, for records that carry one.
    pub fn dt(&self) -> Option<f64> {
        match self {
            Record::V1Station(f) => Some(f.header.dt),
            Record::V1Component(f) => Some(f.header.dt),
            Record::V2(f) => Some(f.header.dt),
            Record::Fourier(f) => Some(f.dt),
            Record::Response(_) => None,
        }
    }

    /// The canonical file name for this record.
    pub fn file_name(&self) -> String {
        match self {
            Record::V1Station(f) => names::v1_station(&f.header.station),
            Record::V1Component(f) => names::v1_component(&f.header.station, f.component),
            Record::V2(f) => names::v2_component(&f.header.station, f.component),
            Record::Fourier(f) => names::f_component(&f.station, f.component),
            Record::Response(f) => names::r_component(&f.station, f.component),
        }
    }

    /// Serializes to the record's text format (byte-identical to the file
    /// the record was parsed from, for files written by this crate).
    pub fn to_text(&self) -> String {
        match self {
            Record::V1Station(f) => f.to_text(),
            Record::V1Component(f) => f.to_text(),
            Record::V2(f) => f.to_text(),
            Record::Fourier(f) => f.to_text(),
            Record::Response(f) => f.to_text(),
        }
    }
}

/// Header facts shared by every record kind, parsed before the numeric
/// blocks. Filters use this to accept or reject a record cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMeta {
    /// Record shape.
    pub kind: RecordKind,
    /// Station code.
    pub station: String,
    /// Event identifier.
    pub event_id: String,
    /// Component, when the record holds exactly one.
    pub component: Option<Component>,
    /// Peak ground acceleration, when stored in the header (V2 only).
    pub pga: Option<f64>,
}

/// Typed header halves, so a record body can be finished after filtering.
enum Head {
    V1Station(v1::V1StationHead),
    V1Component(v1::V1ComponentHead),
    V2(v2::V2Head),
    Fourier(ffile::FHead),
    Response(rfile::RHead),
}

impl Head {
    fn scan<B: BufRead>(kind: RecordKind, sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        Ok(match kind {
            RecordKind::V1Station => Head::V1Station(V1StationFile::scan_head(sc)?),
            RecordKind::V1Component => Head::V1Component(V1ComponentFile::scan_head(sc)?),
            RecordKind::V2 => Head::V2(V2File::scan_head(sc)?),
            RecordKind::Fourier => Head::Fourier(FFile::scan_head(sc)?),
            RecordKind::Response => Head::Response(RFile::scan_head(sc)?),
        })
    }

    fn meta(&self) -> RecordMeta {
        match self {
            Head::V1Station(h) => RecordMeta {
                kind: RecordKind::V1Station,
                station: h.header.station.clone(),
                event_id: h.header.event_id.clone(),
                component: None,
                pga: None,
            },
            Head::V1Component(h) => RecordMeta {
                kind: RecordKind::V1Component,
                station: h.header.station.clone(),
                event_id: h.header.event_id.clone(),
                component: Some(h.component),
                pga: None,
            },
            Head::V2(h) => RecordMeta {
                kind: RecordKind::V2,
                station: h.header.station.clone(),
                event_id: h.header.event_id.clone(),
                component: Some(h.component),
                pga: Some(h.peaks.pga),
            },
            Head::Fourier(h) => RecordMeta {
                kind: RecordKind::Fourier,
                station: h.station.clone(),
                event_id: h.event_id.clone(),
                component: Some(h.component),
                pga: None,
            },
            Head::Response(h) => RecordMeta {
                kind: RecordKind::Response,
                station: h.station.clone(),
                event_id: h.event_id.clone(),
                component: Some(h.component),
                pga: None,
            },
        }
    }

    fn finish<B: BufRead>(self, sc: &mut Scanner<B>) -> Result<Record, FormatError> {
        Ok(match self {
            Head::V1Station(h) => Record::V1Station(V1StationFile::finish_body(sc, h)?),
            Head::V1Component(h) => Record::V1Component(V1ComponentFile::finish_body(sc, h)?),
            Head::V2(h) => Record::V2(V2File::finish_body(sc, h)?),
            Head::Fourier(h) => Record::Fourier(FFile::finish_body(sc, h)?),
            Head::Response(h) => Record::Response(RFile::finish_body(sc, h)?),
        })
    }
}

/// A lazy, fallible iterator over the records in a byte stream.
///
/// Yields `Result<Record, FormatError>`; the first error fuses the iterator
/// (subsequent calls return `None`), since a malformed record leaves the
/// stream position unreliable.
pub struct RecordReader<B> {
    sc: Scanner<B>,
    filters: Vec<Filter>,
    path: Option<PathBuf>,
    records_scanned: usize,
    records_skipped: usize,
    failed: bool,
}

impl RecordReader<BufReader<File>> {
    /// Opens a product file for streaming record iteration.
    pub fn open(path: &Path) -> Result<Self, FormatError> {
        let sc = Scanner::open(path)?;
        let mut reader = RecordReader::from_scanner(sc);
        reader.path = Some(path.to_path_buf());
        Ok(reader)
    }
}

impl<B: BufRead> RecordReader<B> {
    /// Streams records from any buffered source.
    pub fn new(src: B) -> Self {
        Self::from_scanner(Scanner::new(src))
    }

    fn from_scanner(sc: Scanner<B>) -> Self {
        RecordReader {
            sc,
            filters: Vec::new(),
            path: None,
            records_scanned: 0,
            records_skipped: 0,
            failed: false,
        }
    }

    /// Applies filters during the scan. Records whose header already fails
    /// a filter are skipped without parsing their numeric blocks.
    pub fn with_filters(mut self, filters: Vec<Filter>) -> Self {
        self.filters = filters;
        self
    }

    /// Records encountered so far (matched or skipped).
    pub fn records_scanned(&self) -> usize {
        self.records_scanned
    }

    /// Records rejected by filters so far.
    pub fn records_skipped(&self) -> usize {
        self.records_skipped
    }

    fn annotate(&self, e: FormatError) -> FormatError {
        match &self.path {
            Some(p) => e.in_file(p),
            None => e,
        }
    }

    fn next_magic(&mut self) -> Result<Option<RecordKind>, FormatError> {
        let ln = self.sc.line_number();
        match self.sc.peek()? {
            None => Ok(None),
            Some(line) => {
                let token = line.split_whitespace().next().unwrap_or("");
                match RecordKind::from_magic(token) {
                    Some(kind) => Ok(Some(kind)),
                    None => Err(FormatError::syntax(
                        ln,
                        format!("expected a record magic line, got {line:?}"),
                    )),
                }
            }
        }
    }

    fn next_record(&mut self) -> Result<Option<Record>, FormatError> {
        loop {
            let Some(kind) = self.next_magic()? else {
                return Ok(None);
            };
            self.records_scanned += 1;
            self.sc.next_line()?; // consume the magic line
            let head = Head::scan(kind, &mut self.sc)?;
            let meta = head.meta();
            if Filter::match_meta_all(&self.filters, &meta) == Some(false) {
                // Definitely rejected: skip the body without parsing floats.
                self.records_skipped += 1;
                self.sc.skip_to_magic()?;
                continue;
            }
            let record = head.finish(&mut self.sc)?;
            if self.filters.iter().all(|f| f.matches(&record)) {
                return Ok(Some(record));
            }
            self.records_skipped += 1;
        }
    }
}

impl<B: BufRead> Iterator for RecordReader<B> {
    type Item = Result<Record, FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(self.annotate(e)))
            }
        }
    }
}

/// Reads all records from a product file (convenience for
/// `RecordReader::open(path)?.collect()`).
pub fn read_records(path: &Path) -> Result<Vec<Record>, FormatError> {
    RecordReader::open(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MotionTriple, RecordHeader};
    use arp_dsp::fir::BandPass;
    use arp_dsp::peaks::peak_values;

    fn v1c(station: &str, comp: Component, n: usize) -> V1ComponentFile {
        let acc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        V1ComponentFile {
            header: RecordHeader::new(station, "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap(),
            component: comp,
            data: MotionTriple::from_acceleration(acc, 0.01).unwrap(),
        }
    }

    fn v2(station: &str, scale: f64) -> V2File {
        let dt = 0.01;
        let acc: Vec<f64> = (0..64).map(|i| (i as f64 * 0.21).sin() * scale).collect();
        let peaks = peak_values(&acc, dt).unwrap();
        let data = MotionTriple::from_acceleration(acc, dt).unwrap();
        V2File {
            header: RecordHeader::new(station, "EV1", "2019-07-31T03:04:05Z", dt).unwrap(),
            component: Component::Longitudinal,
            band: BandPass::DEFAULT,
            peaks,
            data,
        }
    }

    #[test]
    fn multi_record_stream_yields_all() {
        let stream = format!(
            "{}{}{}",
            v1c("AAAA", Component::Longitudinal, 8).to_text(),
            v2("BBBB", 5.0).to_text(),
            v1c("CCCC", Component::Vertical, 4).to_text(),
        );
        let records: Vec<Record> = RecordReader::new(stream.as_bytes())
            .map(Result::unwrap)
            .collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind(), RecordKind::V1Component);
        assert_eq!(records[1].kind(), RecordKind::V2);
        assert_eq!(records[1].station(), "BBBB");
        assert_eq!(records[2].component(), Some(Component::Vertical));
    }

    #[test]
    fn filters_skip_bodies() {
        let stream = format!(
            "{}{}",
            v1c("AAAA", Component::Longitudinal, 8).to_text(),
            v1c("BBBB", Component::Longitudinal, 8).to_text(),
        );
        let mut reader =
            RecordReader::new(stream.as_bytes()).with_filters(vec![Filter::Station("BBBB".into())]);
        let records: Vec<Record> = reader.by_ref().map(Result::unwrap).collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].station(), "BBBB");
        assert_eq!(reader.records_scanned(), 2);
        assert_eq!(reader.records_skipped(), 1);
    }

    #[test]
    fn skipped_record_bodies_may_be_garbled() {
        // The skipped record's blocks are never float-parsed, so garbage
        // numbers in a filtered-out record do not fail the scan. The ACC
        // block values are replaced wholesale with non-numeric tokens.
        let mut bad = v1c("AAAA", Component::Longitudinal, 2).to_text();
        bad = bad.replace("BEGIN ACC 2", "BEGIN ACC 2\nnot numbers");
        // Remove the two real value lines so the count still works out... the
        // skip path only counts tokens, it never parses them.
        let stream = format!("{}{}", bad, v1c("BBBB", Component::Vertical, 2).to_text());
        let records: Vec<_> = RecordReader::new(stream.as_bytes())
            .with_filters(vec![Filter::Station("BBBB".into())])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].station(), "BBBB");
    }

    #[test]
    fn error_fuses_iterator() {
        let stream = "ARP-V1C 1.0\nSTATION: X\nbroken\n";
        let mut reader = RecordReader::new(stream.as_bytes());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn unknown_magic_is_an_error() {
        let mut reader = RecordReader::new("ARP-NOPE 1.0\n".as_bytes());
        assert!(reader.next().unwrap().is_err());
        let mut reader = RecordReader::new("just text\n".as_bytes());
        assert!(reader.next().unwrap().is_err());
    }

    #[test]
    fn empty_stream_is_empty() {
        assert!(RecordReader::new("".as_bytes()).next().is_none());
        assert!(RecordReader::new("\n\n".as_bytes()).next().is_none());
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in RecordKind::ALL {
            assert_eq!(RecordKind::from_magic(kind.magic()), Some(kind));
            assert_eq!(
                RecordKind::from_short_name(kind.short_name()).unwrap(),
                kind
            );
        }
        assert!(RecordKind::from_short_name("nope").is_err());
        assert_eq!(RecordKind::from_magic("ARP-LIST"), None);
    }

    #[test]
    fn record_accessors() {
        let rec = Record::V2(v2("QCAL", 3.0));
        assert_eq!(rec.kind(), RecordKind::V2);
        assert_eq!(rec.station(), "QCAL");
        assert_eq!(rec.event_id(), "EV1");
        assert_eq!(rec.component(), Some(Component::Longitudinal));
        assert!(rec.pga().is_some());
        assert!(rec.periods().is_none());
        assert_eq!(rec.data_points(), 64);
        assert_eq!(rec.file_name(), "QCALl.v2");
        assert!(rec.dt().is_some());
    }

    #[test]
    fn read_records_from_disk() {
        let dir = std::env::temp_dir().join(format!("arp-iter-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("AAAAl.v1");
        v1c("AAAA", Component::Longitudinal, 6)
            .write(&path)
            .unwrap();
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].station(), "AAAA");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
