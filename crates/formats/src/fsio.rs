//! Filesystem helpers shared by the format readers/writers.

use crate::error::FormatError;
use std::fs;
use std::path::Path;

/// Reads a whole file to a string, wrapping errors with the path.
pub fn read_file(path: &Path) -> Result<String, FormatError> {
    fs::read_to_string(path).map_err(|e| FormatError::io(path, e))
}

/// Writes a string to a file, creating parent directories as needed.
pub fn write_file(path: &Path, contents: &str) -> Result<(), FormatError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| FormatError::io(parent, e))?;
        }
    }
    fs::write(path, contents).map_err(|e| FormatError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let dir = std::env::temp_dir().join(format!("arp-fsio-{}", std::process::id()));
        let path = dir.join("nested/deep/file.txt");
        write_file(&path, "hello\n").unwrap();
        assert_eq!(read_file(&path).unwrap(), "hello\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_file(Path::new("/nonexistent/arp/file")).unwrap_err();
        assert!(matches!(err, FormatError::Io { .. }));
    }
}
