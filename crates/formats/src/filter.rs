//! Composable record filters, evaluated during the streaming scan.
//!
//! A [`Filter`] is first offered the record's header facts
//! ([`RecordMeta`]) via [`Filter::match_meta`];
//! answering `Some(false)` lets the reader skip the record's numeric blocks
//! without parsing a single float. A filter that cannot decide from the
//! header alone (e.g. [`Filter::PeriodBand`] needs the period grid) answers
//! `None` and is re-checked on the fully parsed record.
//!
//! ```
//! use arp_formats::filter::Filter;
//! use arp_formats::iter::{RecordKind, RecordMeta};
//! use arp_formats::types::Component;
//!
//! let meta = RecordMeta {
//!     kind: RecordKind::V2,
//!     station: "SSLB".into(),
//!     event_id: "EV1".into(),
//!     component: Some(Component::Vertical),
//!     pga: Some(41.5),
//! };
//! assert_eq!(Filter::Station("SSLB".into()).match_meta(&meta), Some(true));
//! assert_eq!(Filter::pga_range(Some(50.0), None).match_meta(&meta), Some(false));
//!
//! // Period bands defer on response-spectrum headers: no period grid yet.
//! let spec = RecordMeta { kind: RecordKind::Response, pga: None, ..meta };
//! assert_eq!(Filter::period_band(Some(0.1), Some(2.0)).match_meta(&spec), None);
//! ```

use crate::iter::{Record, RecordKind, RecordMeta};
use crate::types::Component;

/// One predicate over records. Combine several with
/// [`RecordReader::with_filters`](crate::iter::RecordReader::with_filters)
/// or [`Query::filter`](crate::query::Query::filter); all must match
/// (conjunction).
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Keep only records of this shape.
    Kind(RecordKind),
    /// Keep only records of this event (exact match).
    Event(String),
    /// Keep only records from this station (exact match).
    Station(String),
    /// Keep only records of this component. Station records (`ARP-V1S`)
    /// hold all components and never match a component filter.
    Component(Component),
    /// Keep records whose peak ground acceleration lies in
    /// `[min, max]` (either bound optional). Only V2 records carry a PGA;
    /// other kinds never match.
    PgaRange {
        /// Inclusive lower bound (cm/s²), if any.
        min: Option<f64>,
        /// Inclusive upper bound (cm/s²), if any.
        max: Option<f64>,
    },
    /// Keep response-spectrum records whose period grid overlaps
    /// `[min, max]` (either bound optional). Other kinds never match.
    PeriodBand {
        /// Inclusive lower bound (s), if any.
        min: Option<f64>,
        /// Inclusive upper bound (s), if any.
        max: Option<f64>,
    },
}

fn in_range(v: f64, min: Option<f64>, max: Option<f64>) -> bool {
    min.is_none_or(|m| v >= m) && max.is_none_or(|m| v <= m)
}

impl Filter {
    /// Builds a [`Filter::PgaRange`].
    pub fn pga_range(min: Option<f64>, max: Option<f64>) -> Self {
        Filter::PgaRange { min, max }
    }

    /// Builds a [`Filter::PeriodBand`].
    pub fn period_band(min: Option<f64>, max: Option<f64>) -> Self {
        Filter::PeriodBand { min, max }
    }

    /// Decides from header facts alone, where possible.
    ///
    /// * `Some(true)` — the record matches regardless of its body;
    /// * `Some(false)` — the record cannot match; its body may be skipped;
    /// * `None` — undecidable until the body is parsed (re-check with
    ///   [`Filter::matches`]).
    pub fn match_meta(&self, meta: &RecordMeta) -> Option<bool> {
        match self {
            Filter::Kind(kind) => Some(meta.kind == *kind),
            Filter::Event(event) => Some(meta.event_id == *event),
            Filter::Station(station) => Some(meta.station == *station),
            Filter::Component(comp) => Some(meta.component == Some(*comp)),
            Filter::PgaRange { min, max } => match meta.kind {
                // Only V2 records carry a PGA; for them it is in the header.
                RecordKind::V2 => Some(meta.pga.is_some_and(|v| in_range(v, *min, *max))),
                _ => Some(false),
            },
            Filter::PeriodBand { .. } => match meta.kind {
                // The period grid lives in the body; defer.
                RecordKind::Response => None,
                _ => Some(false),
            },
        }
    }

    /// Evaluates all filters against header facts. `Some(false)` as soon as
    /// any filter definitely rejects; `Some(true)` when every filter
    /// definitely accepts; `None` when undecided.
    pub fn match_meta_all(filters: &[Filter], meta: &RecordMeta) -> Option<bool> {
        let mut all_true = true;
        for f in filters {
            match f.match_meta(meta) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Evaluates against a fully parsed record. Always decidable.
    pub fn matches(&self, record: &Record) -> bool {
        match self {
            Filter::Kind(kind) => record.kind() == *kind,
            Filter::Event(event) => record.event_id() == event,
            Filter::Station(station) => record.station() == station,
            Filter::Component(comp) => record.component() == Some(*comp),
            Filter::PgaRange { min, max } => record.pga().is_some_and(|v| in_range(v, *min, *max)),
            Filter::PeriodBand { min, max } => record
                .periods()
                .is_some_and(|ps| ps.iter().any(|&p| in_range(p, *min, *max))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kind: RecordKind) -> RecordMeta {
        RecordMeta {
            kind,
            station: "SSLB".into(),
            event_id: "EV1".into(),
            component: match kind {
                RecordKind::V1Station => None,
                _ => Some(Component::Longitudinal),
            },
            pga: match kind {
                RecordKind::V2 => Some(25.0),
                _ => None,
            },
        }
    }

    #[test]
    fn kind_event_station_decide_on_meta() {
        let m = meta(RecordKind::V2);
        assert_eq!(Filter::Kind(RecordKind::V2).match_meta(&m), Some(true));
        assert_eq!(
            Filter::Kind(RecordKind::Fourier).match_meta(&m),
            Some(false)
        );
        assert_eq!(Filter::Event("EV1".into()).match_meta(&m), Some(true));
        assert_eq!(Filter::Event("EV2".into()).match_meta(&m), Some(false));
        assert_eq!(Filter::Station("SSLB".into()).match_meta(&m), Some(true));
        assert_eq!(Filter::Station("XXXX".into()).match_meta(&m), Some(false));
    }

    #[test]
    fn component_filter_rejects_station_records() {
        let f = Filter::Component(Component::Longitudinal);
        assert_eq!(f.match_meta(&meta(RecordKind::V1Station)), Some(false));
        assert_eq!(f.match_meta(&meta(RecordKind::V1Component)), Some(true));
        assert_eq!(
            Filter::Component(Component::Vertical).match_meta(&meta(RecordKind::V2)),
            Some(false)
        );
    }

    #[test]
    fn pga_range_bounds() {
        let m = meta(RecordKind::V2);
        assert_eq!(Filter::pga_range(None, None).match_meta(&m), Some(true));
        assert_eq!(
            Filter::pga_range(Some(25.0), Some(25.0)).match_meta(&m),
            Some(true)
        );
        assert_eq!(
            Filter::pga_range(Some(30.0), None).match_meta(&m),
            Some(false)
        );
        assert_eq!(
            Filter::pga_range(None, Some(10.0)).match_meta(&m),
            Some(false)
        );
        // Non-V2 kinds carry no PGA and never match.
        assert_eq!(
            Filter::pga_range(None, None).match_meta(&meta(RecordKind::Fourier)),
            Some(false)
        );
    }

    #[test]
    fn period_band_defers_on_response_only() {
        let f = Filter::period_band(Some(0.1), Some(1.0));
        assert_eq!(f.match_meta(&meta(RecordKind::Response)), None);
        assert_eq!(f.match_meta(&meta(RecordKind::V2)), Some(false));
    }

    #[test]
    fn match_meta_all_combines() {
        let m = meta(RecordKind::Response);
        let decided = vec![Filter::Station("SSLB".into()), Filter::Event("EV1".into())];
        assert_eq!(Filter::match_meta_all(&decided, &m), Some(true));
        let rejecting = vec![
            Filter::Station("XXXX".into()),
            Filter::period_band(None, None),
        ];
        assert_eq!(Filter::match_meta_all(&rejecting, &m), Some(false));
        let undecided = vec![
            Filter::Station("SSLB".into()),
            Filter::period_band(None, None),
        ];
        assert_eq!(Filter::match_meta_all(&undecided, &m), None);
        assert_eq!(Filter::match_meta_all(&[], &m), Some(true));
    }
}
