//! SMC-style interchange format.
//!
//! Real strong-motion archives (USGS SMC, COSMOS, the Salvadoran
//! repository's exports) exchange records as fixed-layout text: descriptive
//! header lines, integer/real header blocks, then the samples in fixed-width
//! columns. This module implements a faithful subset — enough to import
//! foreign uncorrected records into the pipeline's [`V1StationFile`](crate::v1::V1StationFile) and to
//! export pipeline products back out — so the library is usable against
//! data that did not originate here.
//!
//! Layout (one component per file, as in SMC):
//!
//! ```text
//! 2 UNCORRECTED ACCELEROGRAM        <- type line (code + text)
//! STATION: <code>  COMPONENT: <L|T|V>
//! EVENT: <id>  ORIGIN: <iso8601>
//! RHDR: <dt> <scale>                <- real header block
//! IHDR: <npts>                      <- integer header block
//! DATA:
//! <8 columns of 10-char fixed-point values, scaled by <scale>>
//! ```

use crate::error::FormatError;
use crate::types::{Component, MotionTriple, RecordHeader};
use crate::v1::V1ComponentFile;
use std::fmt::Write as _;

/// Values per data line.
const COLUMNS: usize = 8;

/// Exports an uncorrected component to SMC-style text. `scale` maps the
/// fixed-point column values back to physical units; it is chosen
/// automatically from the peak amplitude so the 10-character columns retain
/// ~6 significant digits.
pub fn to_smc(file: &V1ComponentFile) -> String {
    let peak = file
        .data
        .acc
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-12);
    // One count = peak / 10^6: six significant digits at the peak.
    let scale = peak / 1e6;

    let mut out = String::new();
    out.push_str("2 UNCORRECTED ACCELEROGRAM\n");
    let _ = writeln!(
        out,
        "STATION: {}  COMPONENT: {}",
        file.header.station,
        file.component.code().to_ascii_uppercase()
    );
    let _ = writeln!(
        out,
        "EVENT: {}  ORIGIN: {}",
        file.header.event_id, file.header.origin_time
    );
    let _ = writeln!(out, "RHDR: {:.9e} {:.9e}", file.header.dt, scale);
    let _ = writeln!(out, "IHDR: {}", file.data.acc.len());
    out.push_str("DATA:\n");
    for chunk in file.data.acc.chunks(COLUMNS) {
        for &v in chunk {
            let counts = (v / scale).round() as i64;
            let _ = write!(out, "{counts:>10}");
        }
        out.push('\n');
    }
    out
}

/// Imports an SMC-style component file. Velocity and displacement are
/// re-derived by integration (the pipeline's convention for uncorrected
/// records).
pub fn from_smc(text: &str) -> Result<V1ComponentFile, FormatError> {
    let mut lines = text.lines().enumerate();

    let (_, type_line) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(1, "empty file"))?;
    if !type_line.trim_start().starts_with('2') {
        return Err(FormatError::InvalidValue(format!(
            "unsupported SMC type line {type_line:?} (only type 2, uncorrected, is supported)"
        )));
    }

    let (ln, station_line) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(2, "missing station line"))?;
    let (station, component) = parse_station_line(ln + 1, station_line)?;

    let (ln, event_line) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(3, "missing event line"))?;
    let (event_id, origin) = parse_event_line(ln + 1, event_line)?;

    let (ln, rhdr) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(4, "missing RHDR"))?;
    let reals = parse_prefixed_numbers(ln + 1, rhdr, "RHDR:")?;
    if reals.len() != 2 {
        return Err(FormatError::syntax(ln + 1, "RHDR needs `dt scale`"));
    }
    let (dt, scale) = (reals[0], reals[1]);
    if !(scale.is_finite() && scale > 0.0) {
        return Err(FormatError::InvalidValue(format!("bad SMC scale {scale}")));
    }

    let (ln, ihdr) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(5, "missing IHDR"))?;
    let ints = parse_prefixed_numbers(ln + 1, ihdr, "IHDR:")?;
    if ints.len() != 1 {
        return Err(FormatError::syntax(ln + 1, "IHDR needs `npts`"));
    }
    let npts = ints[0] as usize;

    let (ln, data_marker) = lines
        .next()
        .ok_or_else(|| FormatError::syntax(6, "missing DATA:"))?;
    if data_marker.trim() != "DATA:" {
        return Err(FormatError::syntax(ln + 1, "expected DATA:"));
    }

    let mut acc = Vec::with_capacity(npts);
    for (ln, line) in lines {
        let mut rest = line;
        while !rest.trim().is_empty() {
            let take = rest.len().min(10);
            let (field, tail) = rest.split_at(take);
            let counts: i64 = field.trim().parse().map_err(|e| {
                FormatError::syntax(ln + 1, format!("bad SMC value {field:?}: {e}"))
            })?;
            acc.push(counts as f64 * scale);
            rest = tail;
        }
        if acc.len() > npts {
            break;
        }
    }
    if acc.len() != npts {
        return Err(FormatError::CountMismatch {
            block: "SMC DATA".into(),
            expected: npts,
            found: acc.len(),
        });
    }

    let header = RecordHeader {
        station,
        event_id,
        origin_time: origin,
        dt,
        units: "cm/s2".into(),
        instrument: "smc-import".into(),
    };
    header.validate()?;
    let data = MotionTriple::from_acceleration(acc, dt)?;
    Ok(V1ComponentFile {
        header,
        component,
        data,
    })
}

fn parse_station_line(ln: usize, line: &str) -> Result<(String, Component), FormatError> {
    let rest = line
        .trim()
        .strip_prefix("STATION:")
        .ok_or_else(|| FormatError::syntax(ln, "expected STATION: line"))?;
    let mut parts = rest.split("COMPONENT:");
    let station = parts
        .next()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| FormatError::syntax(ln, "missing station code"))?;
    let comp_txt = parts
        .next()
        .map(str::trim)
        .ok_or_else(|| FormatError::syntax(ln, "missing COMPONENT:"))?;
    let component = Component::from_name(comp_txt)?;
    Ok((station, component))
}

fn parse_event_line(ln: usize, line: &str) -> Result<(String, String), FormatError> {
    let rest = line
        .trim()
        .strip_prefix("EVENT:")
        .ok_or_else(|| FormatError::syntax(ln, "expected EVENT: line"))?;
    let mut parts = rest.split("ORIGIN:");
    let event = parts
        .next()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| FormatError::syntax(ln, "missing event id"))?;
    let origin = parts
        .next()
        .map(|s| s.trim().to_string())
        .ok_or_else(|| FormatError::syntax(ln, "missing ORIGIN:"))?;
    Ok((event, origin))
}

fn parse_prefixed_numbers(ln: usize, line: &str, prefix: &str) -> Result<Vec<f64>, FormatError> {
    let rest = line
        .trim()
        .strip_prefix(prefix)
        .ok_or_else(|| FormatError::syntax(ln, format!("expected {prefix} line")))?;
    rest.split_whitespace()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|e| FormatError::syntax(ln, format!("bad number {t:?}: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> V1ComponentFile {
        let dt = 0.01;
        let acc: Vec<f64> = (0..137)
            .map(|i| (i as f64 * 0.23).sin() * 42.5 + 0.3)
            .collect();
        V1ComponentFile {
            header: RecordHeader::new("SSLB", "ES-2019", "2019-07-31T03:04:05Z", dt).unwrap(),
            component: Component::Transversal,
            data: MotionTriple::from_acceleration(acc, dt).unwrap(),
        }
    }

    #[test]
    fn roundtrip_preserves_signal_to_scale_precision() {
        let original = sample();
        let text = to_smc(&original);
        let back = from_smc(&text).unwrap();
        assert_eq!(back.header.station, "SSLB");
        assert_eq!(back.component, Component::Transversal);
        assert_eq!(back.data.acc.len(), original.data.acc.len());
        let peak = original
            .data
            .acc
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        for (a, b) in back.data.acc.iter().zip(original.data.acc.iter()) {
            // Fixed-point at 1e-6 of peak.
            assert!((a - b).abs() <= peak * 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn layout_is_fixed_width() {
        let text = to_smc(&sample());
        let data_start = text.find("DATA:\n").unwrap() + 6;
        let first_line = text[data_start..].lines().next().unwrap();
        assert_eq!(first_line.len(), 80); // 8 columns x 10 chars
    }

    #[test]
    fn rejects_corrected_type() {
        let text = to_smc(&sample()).replacen('2', "1", 1);
        assert!(from_smc(&text).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = to_smc(&sample());
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 2)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            from_smc(&truncated),
            Err(FormatError::CountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_garbage_values() {
        let text = to_smc(&sample()).replace("DATA:\n", "DATA:\n   bananas\n");
        assert!(from_smc(&text).is_err());
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(from_smc("").is_err());
        assert!(from_smc("2 X\nNOPE\n").is_err());
        assert!(from_smc("2 X\nSTATION: A COMPONENT: L\nNOPE\n").is_err());
        let no_scale = "2 X\nSTATION: A  COMPONENT: L\nEVENT: E  ORIGIN: t\nRHDR: 0.01 0.0\nIHDR: 1\nDATA:\n         0\n";
        assert!(from_smc(no_scale).is_err());
    }

    #[test]
    fn zero_signal_roundtrips() {
        let mut f = sample();
        f.data = MotionTriple::from_acceleration(vec![0.0; 20], f.header.dt).unwrap();
        let back = from_smc(&to_smc(&f)).unwrap();
        assert!(back.data.acc.iter().all(|&v| v == 0.0));
    }
}
