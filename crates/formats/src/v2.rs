//! `V2` files — corrected records (`<station><c>.v2`).
//!
//! Produced first by process #4 (default band) and finally by process #13
//! (event-specific band). A V2 file records which band-pass corners produced
//! it, the peak values ("max values" in the paper's data flow), and the
//! corrected acceleration/velocity/displacement traces.
//!
//! The peaks live in the header, ahead of the trace blocks — so a
//! [`Filter::PgaRange`](crate::filter::Filter) scan can accept or reject a
//! V2 record without parsing a single trace value.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_block, write_kv, write_magic, Scanner};
use crate::types::{Component, MotionTriple, RecordHeader};
use arp_dsp::fir::BandPass;
use arp_dsp::peaks::PeakValues;
use std::io::BufRead;
use std::path::Path;

pub(crate) const MAGIC: &str = "ARP-V2";

/// A corrected single-component record.
#[derive(Debug, Clone, PartialEq)]
pub struct V2File {
    /// Record metadata.
    pub header: RecordHeader,
    /// Which component this file holds.
    pub component: Component,
    /// Band-pass corners that produced the correction.
    pub band: BandPass,
    /// Peak values of the corrected traces.
    pub peaks: PeakValues,
    /// Corrected motion traces.
    pub data: MotionTriple,
}

/// Header portion of a V2 file: everything before the trace blocks.
pub(crate) struct V2Head {
    pub header: RecordHeader,
    pub component: Component,
    pub band: BandPass,
    pub peaks: PeakValues,
}

impl V2File {
    /// Validates header, band, and traces.
    pub fn validate(&self) -> Result<(), FormatError> {
        self.header.validate()?;
        self.band
            .validate()
            .map_err(|e| FormatError::InvalidValue(e.to_string()))?;
        self.data.validate()
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC);
        write_kv(&mut out, "STATION", &self.header.station);
        write_kv(&mut out, "EVENT", &self.header.event_id);
        write_kv(&mut out, "ORIGIN", &self.header.origin_time);
        write_kv(&mut out, "DT", format!("{:.16e}", self.header.dt));
        write_kv(&mut out, "UNITS", &self.header.units);
        write_kv(&mut out, "INSTRUMENT", &self.header.instrument);
        write_kv(&mut out, "COMPONENT", self.component.name());
        write_kv(
            &mut out,
            "BAND",
            format!(
                "{:.6} {:.6} {:.6} {:.6}",
                self.band.fsl, self.band.fpl, self.band.fph, self.band.fsh
            ),
        );
        write_kv(
            &mut out,
            "PGA",
            format!("{:.9e} {:.6}", self.peaks.pga, self.peaks.pga_time),
        );
        write_kv(
            &mut out,
            "PGV",
            format!("{:.9e} {:.6}", self.peaks.pgv, self.peaks.pgv_time),
        );
        write_kv(
            &mut out,
            "PGD",
            format!("{:.9e} {:.6}", self.peaks.pgd, self.peaks.pgd_time),
        );
        write_block(&mut out, "ACC", &self.data.acc);
        write_block(&mut out, "VEL", &self.data.vel);
        write_block(&mut out, "DISP", &self.data.disp);
        out
    }

    pub(crate) fn scan_head<B: BufRead>(sc: &mut Scanner<B>) -> Result<V2Head, FormatError> {
        let station = sc.expect_kv("STATION")?;
        let event_id = sc.expect_kv("EVENT")?;
        let origin_time = sc.expect_kv("ORIGIN")?;
        let dt = sc.expect_kv_f64("DT")?;
        let units = sc.expect_kv("UNITS")?;
        let instrument = sc.expect_kv("INSTRUMENT")?;
        let component = Component::from_name(&sc.expect_kv("COMPONENT")?)?;

        let band = parse_band(&sc.expect_kv("BAND")?)?;
        let (pga, pga_time) = parse_peak_pair(&sc.expect_kv("PGA")?)?;
        let (pgv, pgv_time) = parse_peak_pair(&sc.expect_kv("PGV")?)?;
        let (pgd, pgd_time) = parse_peak_pair(&sc.expect_kv("PGD")?)?;

        Ok(V2Head {
            header: RecordHeader {
                station,
                event_id,
                origin_time,
                dt,
                units,
                instrument,
            },
            component,
            band,
            peaks: PeakValues {
                pga,
                pga_time,
                pgv,
                pgv_time,
                pgd,
                pgd_time,
            },
        })
    }

    pub(crate) fn finish_body<B: BufRead>(
        sc: &mut Scanner<B>,
        head: V2Head,
    ) -> Result<Self, FormatError> {
        let acc = sc.read_block("ACC")?;
        let vel = sc.read_block("VEL")?;
        let disp = sc.read_block("DISP")?;
        let file = V2File {
            header: head.header,
            component: head.component,
            band: head.band,
            peaks: head.peaks,
            data: MotionTriple { acc, vel, disp },
        };
        file.validate()?;
        Ok(file)
    }

    pub(crate) fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC)?;
        let head = Self::scan_head(sc)?;
        Self::finish_body(sc, head)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Parses from any buffered reader, consuming one record.
    pub fn from_reader<B: BufRead>(src: B) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::new(src))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

fn parse_band(s: &str) -> Result<BandPass, FormatError> {
    let vals: Vec<f64> = s
        .split_whitespace()
        .map(|t| t.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| FormatError::InvalidValue(format!("bad BAND: {e}")))?;
    if vals.len() != 4 {
        return Err(FormatError::InvalidValue(format!(
            "BAND needs 4 values, got {}",
            vals.len()
        )));
    }
    BandPass::new(vals[0], vals[1], vals[2], vals[3])
        .map_err(|e| FormatError::InvalidValue(e.to_string()))
}

fn parse_peak_pair(s: &str) -> Result<(f64, f64), FormatError> {
    let vals: Vec<f64> = s
        .split_whitespace()
        .map(|t| t.parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|e| FormatError::InvalidValue(format!("bad peak pair: {e}")))?;
    if vals.len() != 2 {
        return Err(FormatError::InvalidValue(format!(
            "peak line needs `value time`, got {s:?}"
        )));
    }
    Ok((vals[0], vals[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_dsp::peaks::peak_values;

    fn sample() -> V2File {
        let dt = 0.01;
        let acc: Vec<f64> = (0..200).map(|i| (i as f64 * 0.21).sin() * 12.0).collect();
        let peaks = peak_values(&acc, dt).unwrap();
        let data = MotionTriple::from_acceleration(acc, dt).unwrap();
        V2File {
            header: RecordHeader::new("QCAL", "EV7", "2018-04-02T11:22:33Z", dt).unwrap(),
            component: Component::Vertical,
            band: BandPass::new(0.12, 0.24, 25.0, 27.0).unwrap(),
            peaks,
            data,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let file = sample();
        let back = V2File::from_text(&file.to_text()).unwrap();
        assert_eq!(back.header, file.header);
        assert_eq!(back.component, file.component);
        assert!((back.band.fsl - file.band.fsl).abs() < 1e-9);
        assert!((back.band.fpl - file.band.fpl).abs() < 1e-9);
        assert!((back.peaks.pga - file.peaks.pga).abs() < 1e-9 * file.peaks.pga.abs());
        assert!((back.peaks.pgv_time - file.peaks.pgv_time).abs() < 1e-6);
        assert_eq!(back.data.len(), file.data.len());
        for (a, b) in back.data.disp.iter().zip(&file.data.disp) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("arp-v2-{}", std::process::id()));
        let file = sample();
        let path = dir.join("QCALv.v2");
        file.write(&path).unwrap();
        let back = V2File::read(&path).unwrap();
        assert_eq!(back.component, Component::Vertical);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_band_text_rejected() {
        let file = sample();
        let text = file.to_text().replace("BAND: 0.120000", "BAND: nope");
        assert!(V2File::from_text(&text).is_err());
    }

    #[test]
    fn band_ordering_enforced_on_parse() {
        let file = sample();
        // Swap band corners so fsl > fpl.
        let text = file
            .to_text()
            .replace("BAND: 0.120000 0.240000", "BAND: 0.240000 0.120000");
        assert!(V2File::from_text(&text).is_err());
    }

    #[test]
    fn peak_pair_must_have_two_values() {
        assert!(parse_peak_pair("1.0").is_err());
        assert!(parse_peak_pair("1.0 2.0 3.0").is_err());
        assert!(parse_peak_pair("1.0 two").is_err());
        assert_eq!(parse_peak_pair("3.5 0.25").unwrap(), (3.5, 0.25));
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(V2File::from_text("ARP-V1C 1.0\n").is_err());
    }
}
