//! Pipeline metadata files.
//!
//! Besides the record files, the pipeline moves state between processes via
//! small metadata files (see the inputs/outputs columns of Fig. 5):
//!
//! * **flag files** — processes #0 and #11 each write ten flag files;
//! * **file lists** — `<s><c>.v1list`, `acc-graph`, `fourier`, `response`,
//!   `fourier-graph`, `response-graph` are all lists of file names that tell
//!   downstream processes what to consume ([`FileList`]);
//! * **filter params** — the default band plus, after process #10, the
//!   per-station FSL/FPL corners ([`FilterParams`]);
//! * **max values** — peak values appended by the correction processes
//!   ([`MaxValues`]).

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_kv, write_magic, Scanner};
use crate::types::Component;
use arp_dsp::fir::BandPass;
use std::io::BufRead;
use std::path::Path;

/// A flag file (`flag<k>.txt`): one boolean used by the legacy control flow.
///
/// ```
/// use arp_formats::FlagFile;
///
/// let f = FlagFile { index: 3, value: true };
/// let back = FlagFile::from_text(&f.to_text()).unwrap();
/// assert_eq!(back, f);
/// assert_eq!(FlagFile::file_name(3), "flag3.txt");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlagFile {
    /// Flag index (0..10 in the original pipeline).
    pub index: usize,
    /// Flag value.
    pub value: bool,
}

impl FlagFile {
    const MAGIC: &'static str = "ARP-FLAG";

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        write_kv(&mut out, "INDEX", self.index);
        write_kv(&mut out, "VALUE", if self.value { 1 } else { 0 });
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let index = sc.expect_kv_usize("INDEX")?;
        let raw = sc.expect_kv_usize("VALUE")?;
        if raw > 1 {
            return Err(FormatError::InvalidValue(format!("flag value {raw}")));
        }
        Ok(FlagFile {
            index,
            value: raw == 1,
        })
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }

    /// Conventional file name (`flag<k>.txt`).
    pub fn file_name(index: usize) -> String {
        format!("flag{index}.txt")
    }
}

/// A named list of file names, used by all the "Initialize metadata"
/// processes (#1, #5, #8, #17) and consumed by the stage drivers.
///
/// ```
/// use arp_formats::FileList;
///
/// let list = FileList::new("v1list", vec!["SSLB.v1".into(), "QCAL.v1".into()]).unwrap();
/// let back = FileList::from_text(&list.to_text()).unwrap();
/// assert_eq!(back.entries.len(), 2);
/// // Entries with newlines would corrupt the line-oriented format.
/// assert!(FileList::new("bad", vec!["a\nb".into()]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileList {
    /// What the list describes (e.g. `acc-graph`, `fourier`, `v1list`).
    pub kind: String,
    /// File names, one per entry, in processing order.
    pub entries: Vec<String>,
}

impl FileList {
    const MAGIC: &'static str = "ARP-LIST";

    /// Creates a list, validating that entries contain no newlines.
    pub fn new(kind: impl Into<String>, entries: Vec<String>) -> Result<Self, FormatError> {
        let list = FileList {
            kind: kind.into(),
            entries,
        };
        list.validate()?;
        Ok(list)
    }

    /// Checks entries are single-line and non-empty.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.kind.is_empty() || self.kind.contains(|c: char| c.is_whitespace()) {
            return Err(FormatError::InvalidValue(format!(
                "bad list kind {:?}",
                self.kind
            )));
        }
        for e in &self.entries {
            if e.is_empty() || e.contains('\n') {
                return Err(FormatError::InvalidValue(format!("bad list entry {e:?}")));
            }
        }
        Ok(())
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        write_kv(&mut out, "KIND", &self.kind);
        write_kv(&mut out, "COUNT", self.entries.len());
        for e in &self.entries {
            out.push_str(e);
            out.push('\n');
        }
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let kind = sc.expect_kv("KIND")?;
        let count = sc.expect_kv_usize("COUNT")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(sc.next_line()?.trim().to_string());
        }
        let list = FileList { kind, entries };
        list.validate()?;
        Ok(list)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

/// Per-station low-side corners recovered by process #10.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StationCorners {
    /// Station code.
    pub station: String,
    /// Per-component `(fsl, fpl)` corners in component order L, T, V.
    pub corners: Vec<(f64, f64)>,
}

/// The filter-parameters file: the default band plus any per-station
/// corners accumulated by the Fourier analysis.
///
/// ```
/// use arp_dsp::fir::BandPass;
/// use arp_formats::{FilterParams, StationCorners};
///
/// let mut fp = FilterParams::new(BandPass::DEFAULT);
/// fp.stations.push(StationCorners {
///     station: "SSLB".into(),
///     corners: vec![(0.08, 0.16); 3],
/// });
/// let back = FilterParams::from_text(&fp.to_text()).unwrap();
/// assert_eq!(back.corners_for("SSLB").unwrap().corners.len(), 3);
/// assert!(back.corners_for("XXXX").is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterParams {
    /// Default band used by process #4.
    pub default_band: BandPass,
    /// Per-station corners appended by process #10 (empty before it runs).
    pub stations: Vec<StationCorners>,
}

impl FilterParams {
    const MAGIC: &'static str = "ARP-FPARAMS";

    /// The canonical file name.
    pub const FILE_NAME: &'static str = "filter-params.txt";

    /// Creates the initial file with only the default band.
    pub fn new(default_band: BandPass) -> Self {
        FilterParams {
            default_band,
            stations: Vec::new(),
        }
    }

    /// Finds the corners for a station, if recorded.
    pub fn corners_for(&self, station: &str) -> Option<&StationCorners> {
        self.stations.iter().find(|s| s.station == station)
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        let b = &self.default_band;
        write_kv(
            &mut out,
            "DEFAULT",
            format!("{:.6} {:.6} {:.6} {:.6}", b.fsl, b.fpl, b.fph, b.fsh),
        );
        write_kv(&mut out, "STATIONS", self.stations.len());
        for s in &self.stations {
            let mut line = s.station.clone();
            for (fsl, fpl) in &s.corners {
                line.push_str(&format!(" {fsl:.6} {fpl:.6}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let line = sc.expect_kv("DEFAULT")?;
        let vals: Vec<f64> = line
            .split_whitespace()
            .map(|t| t.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| FormatError::InvalidValue(format!("bad DEFAULT band: {e}")))?;
        if vals.len() != 4 {
            return Err(FormatError::InvalidValue(
                "DEFAULT band needs 4 values".into(),
            ));
        }
        let default_band = BandPass::new(vals[0], vals[1], vals[2], vals[3])
            .map_err(|e| FormatError::InvalidValue(e.to_string()))?;
        let count = sc.expect_kv_usize("STATIONS")?;
        let mut stations = Vec::with_capacity(count);
        for _ in 0..count {
            let ln = sc.line_number();
            let line = sc.next_line()?;
            let mut parts = line.split_whitespace();
            let station = parts
                .next()
                .ok_or_else(|| FormatError::syntax(ln, "empty station line"))?
                .to_string();
            let nums: Vec<f64> = parts
                .map(|t| t.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| FormatError::syntax(ln, format!("bad corner: {e}")))?;
            if nums.is_empty() || !nums.len().is_multiple_of(2) {
                return Err(FormatError::syntax(
                    ln,
                    format!("station {station} needs an even, nonzero number of corner values"),
                ));
            }
            let corners = nums.chunks(2).map(|c| (c[0], c[1])).collect();
            stations.push(StationCorners { station, corners });
        }
        Ok(FilterParams {
            default_band,
            stations,
        })
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

/// One peak-value entry in the max-values file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MaxEntry {
    /// Station code.
    pub station: String,
    /// Component.
    pub component: Component,
    /// Peak ground acceleration.
    pub pga: f64,
    /// Peak ground velocity.
    pub pgv: f64,
    /// Peak ground displacement.
    pub pgd: f64,
}

/// The max-values file accumulated by the correction processes (#4, #13).
///
/// ```
/// use arp_formats::{Component, MaxEntry, MaxValues};
///
/// let mut mv = MaxValues::default();
/// mv.entries.push(MaxEntry {
///     station: "SSLB".into(),
///     component: Component::Vertical,
///     pga: 41.5, pgv: 3.2, pgd: 0.8,
/// });
/// let back = MaxValues::from_text(&mv.to_text()).unwrap();
/// assert_eq!(back.entries[0].station, "SSLB");
/// assert_eq!(MaxValues::FILE_NAME, "max-values.txt");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MaxValues {
    /// Entries in processing order.
    pub entries: Vec<MaxEntry>,
}

impl MaxValues {
    const MAGIC: &'static str = "ARP-MAXVALS";

    /// The canonical file name.
    pub const FILE_NAME: &'static str = "max-values.txt";

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        write_kv(&mut out, "COUNT", self.entries.len());
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} {:.9e} {:.9e} {:.9e}\n",
                e.station,
                e.component.code(),
                e.pga,
                e.pgv,
                e.pgd
            ));
        }
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let count = sc.expect_kv_usize("COUNT")?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let ln = sc.line_number();
            let line = sc.next_line()?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 5 {
                return Err(FormatError::syntax(
                    ln,
                    format!("expected `station comp pga pgv pgd`, got {line:?}"),
                ));
            }
            let component = Component::from_code(parts[1].chars().next().unwrap())?;
            let parse = |s: &str| {
                s.parse::<f64>()
                    .map_err(|e| FormatError::syntax(ln, format!("bad value {s:?}: {e}")))
            };
            entries.push(MaxEntry {
                station: parts[0].to_string(),
                component,
                pga: parse(parts[2])?,
                pgv: parse(parts[3])?,
                pgd: parse(parts[4])?,
            });
        }
        Ok(MaxValues { entries })
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        for value in [true, false] {
            let f = FlagFile { index: 7, value };
            let back = FlagFile::from_text(&f.to_text()).unwrap();
            assert_eq!(back, f);
        }
        assert_eq!(FlagFile::file_name(3), "flag3.txt");
    }

    #[test]
    fn flag_rejects_out_of_range_value() {
        let text = "ARP-FLAG 1.0\nINDEX: 0\nVALUE: 2\n";
        assert!(FlagFile::from_text(text).is_err());
    }

    #[test]
    fn file_list_roundtrip() {
        let list = FileList::new(
            "acc-graph",
            vec!["SSLBl.v2".into(), "SSLBt.v2".into(), "SSLBv.v2".into()],
        )
        .unwrap();
        let back = FileList::from_text(&list.to_text()).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn empty_file_list_roundtrip() {
        let list = FileList::new("fourier", vec![]).unwrap();
        let back = FileList::from_text(&list.to_text()).unwrap();
        assert!(back.entries.is_empty());
    }

    #[test]
    fn file_list_validation() {
        assert!(FileList::new("", vec![]).is_err());
        assert!(FileList::new("has space", vec![]).is_err());
        assert!(FileList::new("ok", vec!["".into()]).is_err());
    }

    #[test]
    fn filter_params_roundtrip() {
        let mut fp = FilterParams::new(BandPass::DEFAULT);
        fp.stations.push(StationCorners {
            station: "SSLB".into(),
            corners: vec![(0.1, 0.2), (0.15, 0.3), (0.12, 0.25)],
        });
        fp.stations.push(StationCorners {
            station: "QCAL".into(),
            corners: vec![(0.05, 0.1)],
        });
        let back = FilterParams::from_text(&fp.to_text()).unwrap();
        assert_eq!(back.stations.len(), 2);
        assert_eq!(back.corners_for("QCAL").unwrap().corners.len(), 1);
        assert!(back.corners_for("NOPE").is_none());
        assert!((back.stations[0].corners[1].1 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn filter_params_bad_lines() {
        let text = "ARP-FPARAMS 1.0\nDEFAULT: 0.05 0.1 25 27\nSTATIONS: 1\nSSLB 0.1\n";
        assert!(FilterParams::from_text(text).is_err()); // odd corner count
        let text2 = "ARP-FPARAMS 1.0\nDEFAULT: 0.05 0.1\nSTATIONS: 0\n";
        assert!(FilterParams::from_text(text2).is_err()); // short band
    }

    #[test]
    fn max_values_roundtrip() {
        let mv = MaxValues {
            entries: vec![
                MaxEntry {
                    station: "SSLB".into(),
                    component: Component::Longitudinal,
                    pga: 12.5,
                    pgv: 1.25,
                    pgd: 0.3,
                },
                MaxEntry {
                    station: "QCAL".into(),
                    component: Component::Vertical,
                    pga: 5.0,
                    pgv: 0.7,
                    pgd: 0.1,
                },
            ],
        };
        let back = MaxValues::from_text(&mv.to_text()).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[1].component, Component::Vertical);
        assert!((back.entries[0].pga - 12.5).abs() < 1e-9);
    }

    #[test]
    fn max_values_bad_line() {
        let text = "ARP-MAXVALS 1.0\nCOUNT: 1\nSSLB l 1.0 2.0\n";
        assert!(MaxValues::from_text(text).is_err());
    }

    #[test]
    fn disk_roundtrips() {
        let dir = std::env::temp_dir().join(format!("arp-meta-{}", std::process::id()));
        let list = FileList::new("response", vec!["a.r".into()]).unwrap();
        let p = dir.join("response.txt");
        list.write(&p).unwrap();
        assert_eq!(FileList::read(&p).unwrap(), list);

        let fp = FilterParams::new(BandPass::DEFAULT);
        let p2 = dir.join(FilterParams::FILE_NAME);
        fp.write(&p2).unwrap();
        assert_eq!(FilterParams::read(&p2).unwrap().stations.len(), 0);

        let mv = MaxValues::default();
        let p3 = dir.join(MaxValues::FILE_NAME);
        mv.write(&p3).unwrap();
        assert!(MaxValues::read(&p3).unwrap().entries.is_empty());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
