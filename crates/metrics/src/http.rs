//! A minimal scrape endpoint: `std::net::TcpListener`, one detached
//! background thread, two routes. No HTTP library — the responses a
//! Prometheus scraper (or `curl`) needs fit in a dozen lines.
//!
//! * `GET /metrics`  → the [`crate::gather`] exposition
//!   (`text/plain; version=0.0.4`)
//! * `GET /healthz`  → `ok` (liveness for the CI smoke job)
//! * anything else   → `404`
//!
//! [`serve`] binds, spawns the accept loop, and returns the bound address
//! — pass port `0` to let the OS pick one (the CLI prints the resolved
//! address so scripts can scrape it). The thread runs until process exit;
//! one request per connection, `Connection: close`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `/metrics` + `/healthz`
/// from a detached background thread. Returns the locally bound address.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("arp-metrics-http".into())
        .spawn(move || {
            // A bad request must not take the endpoint down.
            for mut stream in listener.incoming().flatten() {
                let _ = handle(&mut stream);
            }
        })?;
    Ok(local)
}

/// Reads one request head and writes one response.
fn handle(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0;
    // Read until the end of the request head (or the cap — the request
    // line alone is all that gets routed).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::gather(),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        crate::counter("test_http_total", "t");
        let addr = serve("127.0.0.1:0").expect("bind");
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("test_http_total"));
        // The body after the blank line must parse as an exposition.
        let body = metrics.split("\r\n\r\n").nth(1).expect("body");
        crate::expo::parse_exposition(body).expect("valid exposition");
        assert!(get(addr, "/healthz").contains("ok"));
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
    }
}
