//! A minimal scrape endpoint: `std::net::TcpListener`, one detached
//! background thread, two routes. No HTTP library — the responses a
//! Prometheus scraper (or `curl`) needs fit in a dozen lines.
//!
//! * `GET /metrics`  → the [`crate::gather`] exposition
//!   (`text/plain; version=0.0.4`)
//! * `GET /healthz`  → `ok` (liveness for the CI smoke job)
//! * `GET /statusz`  → live pipeline view (`application/json`) from the
//!   provider installed with [`set_statusz_provider`]; `503` until one is
//!   installed
//! * non-GET method  → `405` with an `Allow: GET` header
//! * oversized head  → `431` (head longer than the 4 KiB read cap)
//! * anything else   → `404` naming the path
//!
//! [`serve`] binds, spawns the accept loop, and returns the bound address
//! — pass port `0` to let the OS pick one (the CLI prints the resolved
//! address so scripts can scrape it). The thread runs until process exit;
//! one request per connection, `Connection: close`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// Renders the `/statusz` body on demand (called per request, on the
/// serving thread).
type StatuszProvider = Box<dyn Fn() -> String + Send + Sync>;

static STATUSZ: OnceLock<StatuszProvider> = OnceLock::new();

/// Installs the `/statusz` body provider — typically a closure assembling
/// the live batch frontier, per-worker state, and pool counters into one
/// JSON document. First install wins; later calls are ignored (the
/// endpoint is process-global, like the registry).
pub fn set_statusz_provider(provider: StatuszProvider) {
    let _ = STATUSZ.set(provider);
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves `/metrics` + `/healthz`
/// from a detached background thread. Returns the locally bound address.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("arp-metrics-http".into())
        .spawn(move || {
            // A bad request must not take the endpoint down.
            for mut stream in listener.incoming().flatten() {
                let _ = handle(&mut stream);
            }
        })?;
    Ok(local)
}

/// Reads one request head and writes one response.
fn handle(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut len = 0;
    let mut terminated = false;
    // Read until the end of the request head (or the cap — the request
    // line alone is all that gets routed).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            terminated = true;
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut extra_headers = "";
    let (status, content_type, body) = if len >= buf.len() && !terminated {
        // The buffer filled without ever seeing the head terminator:
        // refusing beats silently routing a truncated request line.
        (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "request head too large\n".to_string(),
        )
    } else if !method.is_empty() && method != "GET" {
        extra_headers = "Allow: GET\r\n";
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::gather(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/statusz" => match STATUSZ.get() {
                Some(provider) => ("200 OK", "application/json; charset=utf-8", provider()),
                None => (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "statusz provider not installed\n".to_string(),
                ),
            },
            // Name the path so a typo'd scrape target is diagnosable from
            // the response body alone.
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("not found: {path}\n"),
            ),
        }
    };
    if len >= buf.len() && !terminated {
        // Drain whatever is still in flight (bounded by the read timeout):
        // closing with unread data pending makes the kernel reset the
        // connection, which would discard the 431 before the client reads it.
        let mut sink = [0u8; 1024];
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }
    let response = format!(
        "HTTP/1.1 {status}\r\n{extra_headers}Content-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_metrics_healthz_and_404() {
        crate::counter("test_http_total", "t");
        let addr = serve("127.0.0.1:0").expect("bind");
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("test_http_total"));
        // The body after the blank line must parse as an exposition.
        let body = metrics.split("\r\n\r\n").nth(1).expect("body");
        crate::expo::parse_exposition(body).expect("valid exposition");
        assert!(get(addr, "/healthz").contains("ok"));
        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("not found: /nope"), "{missing}");
    }

    #[test]
    fn statusz_serves_provider_body_as_json() {
        let addr = serve("127.0.0.1:0").expect("bind");
        set_statusz_provider(Box::new(|| "{\"pipeline\":\"idle\"}".to_string()));
        let resp = get(addr, "/statusz");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("application/json"), "{resp}");
        assert!(resp.contains("{\"pipeline\":\"idle\"}"), "{resp}");
    }

    fn raw(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request).expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn non_get_method_gets_405_with_allow_header() {
        let addr = serve("127.0.0.1:0").expect("bind");
        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let resp = raw(
                addr,
                format!("{method} /metrics HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes(),
            );
            assert!(
                resp.starts_with("HTTP/1.1 405 Method Not Allowed"),
                "{method}: {resp}"
            );
            assert!(resp.contains("Allow: GET\r\n"), "{method}: {resp}");
            assert!(resp.contains("method not allowed"), "{method}: {resp}");
        }
    }

    #[test]
    fn oversized_unterminated_head_gets_431() {
        let addr = serve("127.0.0.1:0").expect("bind");
        // 8 KiB of header bytes with no terminating blank line: the head
        // overflows the 4 KiB read cap mid-header.
        let mut request = b"GET /metrics HTTP/1.1\r\n".to_vec();
        request.resize(request.len() + 8192, b'x');
        let resp = raw(addr, &request);
        assert!(
            resp.starts_with("HTTP/1.1 431 Request Header Fields Too Large"),
            "{resp}"
        );
        assert!(resp.contains("request head too large"), "{resp}");
    }
}
