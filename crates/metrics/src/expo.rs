//! Prometheus text-exposition (format 0.0.4) escaping and parsing.
//!
//! [`crate::gather`] is the renderer; this module holds the escaping rules
//! it shares and [`parse_exposition`] — a strict parser for the same
//! format, used by the round-trip tests and by `arp metrics --check` (the
//! CI smoke job scrapes `/metrics` once and feeds the body through it).

use std::fmt::Write as _;

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (family name plus any `_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// Value of the label `key`, when present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Escapes a `# HELP` text: backslash and newline, per the format spec.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, and newline.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .skip(1)
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name
            .chars()
            .skip(1)
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Label pairs plus the unparsed remainder of the line.
type LabelsAndRest<'a> = (Vec<(String, String)>, &'a str);

/// Parses `{k="v",...}` starting after the `{`; returns the pairs and the
/// rest of the line after the closing `}`.
fn parse_labels(mut rest: &str, lineno: usize) -> Result<LabelsAndRest<'_>, String> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {lineno}: label without '='"))?;
        let key = rest[..eq].trim();
        if !valid_label_name(key) {
            return Err(format!("line {lineno}: invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("line {lineno}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => {
                        return Err(format!(
                            "line {lineno}: bad escape {:?} in label value",
                            other.map(|(_, c)| c)
                        ))
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = rest[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err(format!("line {lineno}: expected ',' or '}}' after label"));
        }
    }
}

/// Parses a Prometheus 0.0.4 text exposition. Validates comment lines
/// (`# TYPE` must name one of the five metric types, `# HELP`/`# TYPE`
/// must name a valid metric), sample-line syntax, and that every value is
/// a parseable, non-NaN float. Returns the sample lines in file order.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: TYPE for invalid name {name:?}"));
                }
                if !TYPES.contains(&kind) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: HELP for invalid name {name:?}"));
                }
            }
            // Other comments are allowed and ignored.
            continue;
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(after) = rest.strip_prefix('{') {
            parse_labels(after, lineno)?
        } else {
            (Vec::new(), rest)
        };
        let mut fields = rest.split_whitespace();
        let value_str = fields
            .next()
            .ok_or_else(|| format!("line {lineno}: sample without value"))?;
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            s => s
                .parse()
                .map_err(|_| format!("line {lineno}: unparseable value {s:?}"))?,
        };
        if value.is_nan() {
            return Err(format!("line {lineno}: NaN sample value for {name:?}"));
        }
        // An optional integer timestamp may follow; anything else is junk.
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {lineno}: trailing junk {ts:?}"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {lineno}: trailing junk after timestamp"));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Renders samples back to bare text lines (no comments) — handy for
/// diffing parse results in tests.
pub fn render_samples(samples: &[Sample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&s.name);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
            }
            out.push('}');
        }
        let _ = writeln!(out, " {}", s.value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_and_without_labels() {
        let text = "# HELP x_total Things.\n# TYPE x_total counter\nx_total 4\n\
                    y_seconds{process=\"4\",quantile=\"0.5\"} 0.25\n";
        let samples = parse_exposition(text).expect("parse");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "x_total");
        assert_eq!(samples[0].value, 4.0);
        assert_eq!(samples[1].label("process"), Some("4"));
        assert_eq!(samples[1].label("quantile"), Some("0.5"));
        assert_eq!(samples[1].value, 0.25);
    }

    #[test]
    fn label_escapes_round_trip() {
        let tricky = "a\\b\"c\nd";
        let line = format!("m{{k=\"{}\"}} 1\n", escape_label_value(tricky));
        let samples = parse_exposition(&line).expect("parse");
        assert_eq!(samples[0].label("k"), Some(tricky));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("1bad_name 3\n").is_err());
        assert!(parse_exposition("m{k=unquoted} 3\n").is_err());
        assert!(parse_exposition("m{k=\"v\" 3\n").is_err());
        assert!(parse_exposition("m notanumber\n").is_err());
        assert!(parse_exposition("m 1 2 3\n").is_err());
        assert!(parse_exposition("m NaN\n").is_err());
        assert!(parse_exposition("# TYPE m frobnicator\n").is_err());
    }

    #[test]
    fn accepts_infinities_and_timestamps() {
        let samples = parse_exposition("m +Inf 1700000000\n").expect("parse");
        assert_eq!(samples[0].value, f64::INFINITY);
    }
}
