//! # arp-metrics — live metrics for the parallel pipeline
//!
//! Where `arp-trace` answers *"which worker ran which node when"* after the
//! fact, this crate answers *"what is the system doing right now"* — and
//! keeps answering while a long batch run is in flight. It is a global
//! registry of three primitive instruments, all updated with single atomic
//! operations and all readable at any time without stopping the world:
//!
//! * [`Counter`] — a monotonically increasing `u64` (nodes dispatched,
//!   events retired, bytes processed);
//! * [`Gauge`] — a signed instantaneous level with a high-water mark
//!   (ready-queue depth, workers busy);
//! * [`Histogram`] — a log-linear distribution recorder (queue waits,
//!   execute times, per-process durations) whose quantiles carry a
//!   bounded relative error of at most 1/16 (6.25%).
//!
//! ## Disabled path
//!
//! Like `arp-trace`, recording is off by default and every mutator's
//! disabled path is a single relaxed atomic load — instrumented code can
//! stay instrumented in production builds. [`set_enabled`] turns
//! collection on (the CLI does this when `--metrics-addr` is given, the
//! bench harness around measured runs). Reads ([`gather`], snapshots) work
//! regardless of the flag.
//!
//! ## Exposition
//!
//! [`gather`] renders the whole registry in the Prometheus text exposition
//! format 0.0.4 (counters and gauges as themselves, histograms as
//! summaries with `quantile="0.5|0.95|0.99"` lines). [`expo::parse_exposition`]
//! is the matching parser used by tests and `arp metrics --check`, and
//! [`http::serve`] exposes `gather` over a minimal `/metrics` endpoint.
//!
//! ```
//! let hits = arp_metrics::counter("doc_hits_total", "Example counter.");
//! arp_metrics::set_enabled(true);
//! hits.inc();
//! arp_metrics::set_enabled(false);
//! hits.inc(); // inert: disabled
//! assert_eq!(hits.get(), 1);
//! let text = arp_metrics::gather();
//! assert!(text.contains("# TYPE doc_hits_total counter"));
//! ```

#![warn(missing_docs)]

pub mod expo;
pub mod http;

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while metric recording is on. The disabled fast path of every
/// mutator is this single relaxed load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off. Reads are always allowed; this gates
/// only the mutators, so flipping it never tears an in-progress snapshot.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Resets only via [`reset`].
pub struct Counter {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, String)>,
    value: AtomicU64,
}

impl Counter {
    /// Adds one. A single relaxed load when recording is disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A single relaxed load when recording is disabled.
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level. Tracks its high-water mark, exposed as a
/// companion `<name>_peak` gauge.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, String)>,
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// Adds `d` and returns the new level. Inert (returning the current
    /// level) when recording is disabled.
    pub fn add(&self, d: i64) -> i64 {
        if !enabled() {
            return self.get();
        }
        let now = self.value.fetch_add(d, Ordering::Relaxed) + d;
        self.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Subtracts `d` and returns the new level.
    pub fn sub(&self, d: i64) -> i64 {
        self.add(-d)
    }

    /// Sets the level (and raises the peak if needed).
    pub fn set(&self, v: i64) {
        if !enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level seen since the last [`reset`].
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two magnitude (2^4): the knob that sets
/// both the memory per histogram and the quantile error bound.
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4;
/// Total buckets: values `< 16` get exact unit buckets, and each of the 60
/// remaining magnitudes [2^m, 2^(m+1)) is split into 16 linear sub-buckets.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// A log-linear histogram over `u64` samples (HdrHistogram-style
/// bucketing): exact below [`SUB_BUCKETS`], then [`SUB_BUCKETS`] linear
/// sub-buckets per power of two, for a worst-case relative quantile error
/// of `1/SUB_BUCKETS` = 6.25%. Each recording is two relaxed `fetch_add`s
/// plus the enable check; the full range of `u64` is representable, so no
/// sample is ever clamped or dropped.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, String)>,
    /// Samples are recorded in an integer unit (e.g. nanoseconds); the
    /// exposition divides by this to reach the advertised unit (e.g.
    /// seconds for a `_seconds` name).
    scale: f64,
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Index of the bucket `v` lands in. Total over `u64`: every value lands
/// in exactly one bucket.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros(); // 2^m <= v, m >= SUB_BITS
    let sub = ((v >> (m - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    (m - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKET_COUNT, "bucket index {i} out of range");
    if i < SUB_BUCKETS {
        return (i as u64, i as u64 + 1);
    }
    let g = (i / SUB_BUCKETS - 1) as u32; // magnitude above the exact range
    let sub = (i % SUB_BUCKETS) as u64;
    let lo = (SUB_BUCKETS as u64 + sub) << g;
    // The topmost bucket's upper bound is 2^64; clamp to u64::MAX.
    (lo, lo.saturating_add(1u64 << g))
}

impl Histogram {
    /// Records one sample. Two relaxed RMWs; a single relaxed load when
    /// recording is disabled.
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the bucket counts for analysis. (Counts
    /// are read individually with relaxed loads; a snapshot taken while
    /// recording races may be off by in-flight samples, never torn.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            scale: self.scale,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state; the quantile/mean
/// queries live here so they see one consistent set of counts.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`BUCKET_COUNT`] entries).
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded samples (raw unit).
    pub sum: u64,
    /// Raw-unit-per-exposed-unit divisor (see [`Histogram`]).
    pub scale: f64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile (`q` in `[0, 1]`) in the raw recorded unit,
    /// reported as the lower bound of the containing bucket (relative
    /// error `< 1/16`, exact below [`SUB_BUCKETS`]). `None` when nothing
    /// has been recorded — empty distributions have no quantiles, and
    /// returning a number here is how NaNs end up in reports.
    pub fn quantile_raw(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i).0);
            }
        }
        // Unreachable when counts sum to count; be safe under racy reads.
        Some(bucket_bounds(BUCKET_COUNT - 1).0)
    }

    /// [`Self::quantile_raw`] divided by the scale — the value in the
    /// exposed unit (seconds for `_seconds` histograms).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_raw(q).map(|v| v as f64 / self.scale)
    }

    /// Mean in the exposed unit; `None` when nothing has been recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum as f64 / self.count as f64 / self.scale)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Histogram(h) => h.name,
        }
    }

    fn label(&self) -> &Option<(&'static str, String)> {
        match self {
            Metric::Counter(c) => &c.label,
            Metric::Gauge(g) => &g.label,
            Metric::Histogram(h) => &h.label,
        }
    }
}

fn registry() -> &'static Mutex<Vec<Metric>> {
    static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn assert_valid_name(name: &str) {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_rest = name
        .chars()
        .skip(1)
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(ok_first && ok_rest, "invalid metric name {name:?}");
}

/// Registers (or returns the existing) counter `name`. Idempotent per
/// `(name, label)`; panics if the name is already registered as a
/// different instrument kind (a programming error, not a runtime input).
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    counter_labeled(name, help, None)
}

/// As [`counter`], carrying one `key="value"` label pair.
pub fn counter_labeled(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
) -> &'static Counter {
    assert_valid_name(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(found) = find(&reg, name, &label) {
        match found {
            Metric::Counter(c) => return c,
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter {
        name,
        help,
        label: label.map(|(k, v)| (k, v.to_string())),
        value: AtomicU64::new(0),
    }));
    reg.push(Metric::Counter(leaked));
    leaked
}

/// Registers (or returns the existing) gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    gauge_labeled(name, help, None)
}

/// As [`gauge`], carrying one `key="value"` label pair (the pool registers
/// one per worker thread for deque depth).
pub fn gauge_labeled(
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &str)>,
) -> &'static Gauge {
    assert_valid_name(name);
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(found) = find(&reg, name, &label) {
        match found {
            Metric::Gauge(g) => return g,
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge {
        name,
        help,
        label: label.map(|(k, v)| (k, v.to_string())),
        value: AtomicI64::new(0),
        peak: AtomicI64::new(0),
    }));
    reg.push(Metric::Gauge(leaked));
    leaked
}

/// Registers (or returns the existing) histogram `name`. `scale` is the
/// raw-unit-per-exposed-unit divisor (1e9 for nanosecond recordings
/// exposed as `_seconds`).
pub fn histogram(name: &'static str, help: &'static str, scale: f64) -> &'static Histogram {
    histogram_labeled(name, help, scale, None)
}

/// As [`histogram`], carrying one `key="value"` label pair (the per-process
/// duration family registers twenty of these, `process="0".."19"`).
pub fn histogram_labeled(
    name: &'static str,
    help: &'static str,
    scale: f64,
    label: Option<(&'static str, &str)>,
) -> &'static Histogram {
    assert_valid_name(name);
    assert!(
        scale.is_finite() && scale > 0.0,
        "invalid histogram scale {scale}"
    );
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(found) = find(&reg, name, &label) {
        match found {
            Metric::Histogram(h) => return h,
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram {
        name,
        help,
        label: label.map(|(k, v)| (k, v.to_string())),
        scale,
        buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    }));
    reg.push(Metric::Histogram(leaked));
    leaked
}

fn find<'r>(
    reg: &'r [Metric],
    name: &str,
    label: &Option<(&'static str, &str)>,
) -> Option<&'r Metric> {
    reg.iter().find(|m| {
        m.name() == name
            && match (m.label(), label) {
                (None, None) => true,
                (Some((k1, v1)), Some((k2, v2))) => k1 == k2 && v1 == v2,
                _ => false,
            }
    })
}

/// Zeroes every registered metric (counters, gauge levels and peaks,
/// histogram buckets). The bench harness calls this between measured
/// phases so each phase reads its own distribution; a live service never
/// needs it.
pub fn reset() {
    for m in registry().lock().expect("metrics registry poisoned").iter() {
        match m {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => {
                g.value.store(0, Ordering::Relaxed);
                g.peak.store(0, Ordering::Relaxed);
            }
            Metric::Histogram(h) => {
                for b in h.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (format 0.0.4)
// ---------------------------------------------------------------------------

/// `{key="value"}` / `{key="value",quantile="q"}` rendering.
fn label_str(label: &Option<(&'static str, String)>, extra: Option<(&str, &str)>) -> String {
    let mut pairs = Vec::new();
    if let Some((k, v)) = label {
        pairs.push(format!("{k}=\"{}\"", expo::escape_label_value(v)));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format 0.0.4. Families are grouped (one `# HELP`/`# TYPE` header per
/// name, members in registration order); histograms render as summaries
/// with `quantile="0.5" | "0.95" | "0.99"` sample lines, which are omitted
/// — never NaN — while the histogram is empty. Gauges render a companion
/// `<name>_peak` family carrying the high-water mark.
pub fn gather() -> String {
    let reg = registry().lock().expect("metrics registry poisoned");
    // Group members by family name, preserving first-appearance order.
    let mut families: Vec<(&'static str, Vec<&Metric>)> = Vec::new();
    for m in reg.iter() {
        match families.iter_mut().find(|(n, _)| *n == m.name()) {
            Some((_, members)) => members.push(m),
            None => families.push((m.name(), vec![m])),
        }
    }
    let mut out = String::new();
    for (name, members) in &families {
        match members[0] {
            Metric::Counter(first) => {
                out.push_str(&format!(
                    "# HELP {name} {}\n",
                    expo::escape_help(first.help)
                ));
                out.push_str(&format!("# TYPE {name} counter\n"));
                for m in members {
                    if let Metric::Counter(c) = m {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_str(&c.label, None),
                            c.get()
                        ));
                    }
                }
            }
            Metric::Gauge(first) => {
                out.push_str(&format!(
                    "# HELP {name} {}\n",
                    expo::escape_help(first.help)
                ));
                out.push_str(&format!("# TYPE {name} gauge\n"));
                for m in members {
                    if let Metric::Gauge(g) = m {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_str(&g.label, None),
                            g.get()
                        ));
                    }
                }
                out.push_str(&format!("# HELP {name}_peak High-water mark of {name}.\n"));
                out.push_str(&format!("# TYPE {name}_peak gauge\n"));
                for m in members {
                    if let Metric::Gauge(g) = m {
                        out.push_str(&format!(
                            "{name}_peak{} {}\n",
                            label_str(&g.label, None),
                            g.peak()
                        ));
                    }
                }
            }
            Metric::Histogram(first) => {
                out.push_str(&format!(
                    "# HELP {name} {}\n",
                    expo::escape_help(first.help)
                ));
                out.push_str(&format!("# TYPE {name} summary\n"));
                for m in members {
                    if let Metric::Histogram(h) = m {
                        let snap = h.snapshot();
                        for q in ["0.5", "0.95", "0.99"] {
                            let qv: f64 = q.parse().unwrap();
                            if let Some(v) = snap.quantile(qv) {
                                out.push_str(&format!(
                                    "{name}{} {v}\n",
                                    label_str(&h.label, Some(("quantile", q)))
                                ));
                            }
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            label_str(&h.label, None),
                            snap.sum as f64 / snap.scale
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            label_str(&h.label, None),
                            snap.count
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry and enable flag are process-global; serialize the tests
    /// that toggle them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_recording<R>(f: impl FnOnce() -> R) -> R {
        let _t = TEST_LOCK.lock().unwrap();
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_mutators_are_inert() {
        let _t = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        let c = counter("test_inert_total", "t");
        let g = gauge("test_inert_gauge", "t");
        let h = histogram("test_inert_seconds", "t", 1e9);
        c.inc();
        g.add(5);
        h.record(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn counter_and_gauge_track_levels_and_peaks() {
        with_recording(|| {
            let c = counter("test_cg_total", "t");
            let g = gauge("test_cg_gauge", "t");
            c.add(3);
            c.inc();
            assert_eq!(c.get(), 4);
            assert_eq!(g.add(2), 2);
            assert_eq!(g.add(3), 5);
            assert_eq!(g.sub(4), 1);
            assert_eq!(g.peak(), 5);
            g.set(7);
            assert_eq!(g.peak(), 7);
        });
    }

    #[test]
    fn registration_is_idempotent_per_name_and_label() {
        let _t = TEST_LOCK.lock().unwrap();
        let a = counter("test_idem_total", "t");
        let b = counter("test_idem_total", "different help ignored");
        assert!(std::ptr::eq(a, b));
        let h0 = histogram_labeled("test_idem_seconds", "t", 1e9, Some(("process", "0")));
        let h1 = histogram_labeled("test_idem_seconds", "t", 1e9, Some(("process", "1")));
        let h0b = histogram_labeled("test_idem_seconds", "t", 1e9, Some(("process", "0")));
        assert!(std::ptr::eq(h0, h0b));
        assert!(!std::ptr::eq(h0, h1));
    }

    #[test]
    fn bucket_partition_is_exact_below_sub_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        // Consecutive buckets meet exactly: hi(i) == lo(i+1), starting at 0.
        assert_eq!(bucket_bounds(0).0, 0);
        for i in 0..BUCKET_COUNT - 1 {
            assert_eq!(
                bucket_bounds(i).1,
                bucket_bounds(i + 1).0,
                "gap after bucket {i}"
            );
        }
        // The last bucket reaches the top of the u64 range.
        let (lo, hi) = bucket_bounds(BUCKET_COUNT - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert!(lo < hi);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn empty_histogram_has_no_quantiles_and_no_nan() {
        let _t = TEST_LOCK.lock().unwrap();
        reset();
        let h = histogram("test_empty_seconds", "t", 1e9);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        let text = gather();
        assert!(!text.contains("NaN"), "exposition contains NaN:\n{text}");
    }

    #[test]
    fn quantiles_are_nearest_rank_over_buckets() {
        with_recording(|| {
            let h = histogram("test_q_raw", "t", 1.0);
            for v in 1..=100u64 {
                h.record(v);
            }
            let snap = h.snapshot();
            assert_eq!(snap.count, 100);
            // Values <16 are exact; larger ones land on bucket lower bounds.
            let p50 = snap.quantile_raw(0.5).unwrap();
            assert!(p50 <= 50 && 50 - p50 <= 50 / 16, "p50 {p50}");
            let p99 = snap.quantile_raw(0.99).unwrap();
            assert!(p99 <= 99 && 99 - p99 <= 99 / 16, "p99 {p99}");
            assert!((snap.mean().unwrap() - 50.5).abs() < 1e-9);
        });
    }

    #[test]
    fn reset_zeroes_everything() {
        with_recording(|| {
            let c = counter("test_reset_total", "t");
            let g = gauge("test_reset_gauge", "t");
            let h = histogram("test_reset_seconds", "t", 1e9);
            c.inc();
            g.add(9);
            h.record(1_000);
            reset();
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0);
            assert_eq!(g.peak(), 0);
            assert_eq!(h.snapshot().count, 0);
        });
    }

    #[test]
    fn gather_renders_families_with_headers() {
        with_recording(|| {
            let c = counter("test_gather_total", "Counted things.");
            let g = gauge("test_gather_gauge", "A level.");
            let h = histogram_labeled(
                "test_gather_seconds",
                "Timings.",
                1e9,
                Some(("process", "4")),
            );
            c.add(2);
            g.add(3);
            h.record(2_000_000_000); // 2 s
            let text = gather();
            assert!(text.contains("# TYPE test_gather_total counter"));
            assert!(text.contains("test_gather_total 2"));
            assert!(text.contains("# TYPE test_gather_gauge gauge"));
            assert!(text.contains("test_gather_gauge 3"));
            assert!(text.contains("test_gather_gauge_peak 3"));
            assert!(text.contains("# TYPE test_gather_seconds summary"));
            assert!(text.contains(r#"test_gather_seconds{process="4",quantile="0.5"}"#));
            assert!(text.contains(r#"test_gather_seconds_count{process="4"} 1"#));
        });
    }
}
