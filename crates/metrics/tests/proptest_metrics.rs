//! Property tests over the log-linear histogram: the buckets partition the
//! whole `u64` line (every sample lands in exactly one bucket), and
//! nearest-rank quantiles stay within the advertised relative error bound.

use arp_metrics::{bucket_bounds, bucket_index, BUCKET_COUNT, SUB_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every u64 lands in exactly one bucket: the index is in range and
    /// the value sits inside that bucket's half-open bounds.
    #[test]
    fn every_sample_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v, "{v} below bucket {i} = [{lo}, {hi})");
        // The topmost bucket's `hi` clamps to u64::MAX (true bound 2^64),
        // so membership there is lo <= v <= u64::MAX.
        prop_assert!(v < hi || (i == BUCKET_COUNT - 1 && hi == u64::MAX),
            "{v} above bucket {i} = [{lo}, {hi})");
    }

    /// Exactly one: no *other* bucket also claims the value. (Checked via
    /// the neighbours — bounds are monotone, so these are the only
    /// candidates.)
    #[test]
    fn neighbouring_buckets_do_not_overlap(v in any::<u64>()) {
        let i = bucket_index(v);
        if i > 0 {
            let (_, hi_prev) = bucket_bounds(i - 1);
            prop_assert!(hi_prev <= v, "bucket {} also contains {v}", i - 1);
        }
        if i + 1 < BUCKET_COUNT {
            let (lo_next, _) = bucket_bounds(i + 1);
            prop_assert!(v < lo_next, "bucket {} also contains {v}", i + 1);
        }
    }

    /// A quantile of a single-value distribution is that value's bucket
    /// lower bound: exact below SUB_BUCKETS, within 1/SUB_BUCKETS (6.25%)
    /// relative error above.
    #[test]
    fn quantile_error_is_bounded(v in any::<u64>(), q in 0.0f64..1.0) {
        let (lo, _) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v);
        if v < SUB_BUCKETS as u64 {
            prop_assert_eq!(lo, v);
        } else {
            // Bucket width is lo / (16 + sub) <= lo / 16 <= v / 16.
            prop_assert!(v - lo <= v / SUB_BUCKETS as u64,
                "bucket lower bound {lo} is more than 1/16 below {v}");
        }
        // And the quantile query itself returns that lower bound, for any q.
        let mut counts = vec![0u64; BUCKET_COUNT];
        counts[bucket_index(v)] = 1;
        let snap = arp_metrics::HistogramSnapshot { counts, count: 1, sum: v, scale: 1.0 };
        prop_assert_eq!(snap.quantile_raw(q), Some(lo));
    }
}
