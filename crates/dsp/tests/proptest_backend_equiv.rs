//! Property tests for the scalar ↔ SIMD backend contract: for every
//! vectorized kernel, the two backends must produce **bitwise-identical**
//! results (`f64::to_bits` equality, not approximate closeness). This is
//! what makes `--dsp-backend` a pure performance knob — pipeline products
//! stay byte-identical whichever backend runs.

use arp_dsp::backend::DspBackend;
use arp_dsp::complex::Complex;
use arp_dsp::fft::{fft_convolve_with, fft_with, ifft_with, irfft_with, rfft_with};
use arp_dsp::fir::{convolve_direct_with, frequency_gain_with, BandPass, FirFilter};
use arp_dsp::respspec::{response_spectrum_with, ResponseMethod};
use arp_dsp::spectrum::fourier_spectrum_with;
use arp_dsp::window::WindowKind;
use proptest::prelude::*;

const S: DspBackend = DspBackend::Scalar;
const V: DspBackend = DspBackend::Simd;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

fn complex_signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

fn bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "index {i}: scalar {x} vs simd {y}"
        );
    }
}

fn complex_bits_eq(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "re at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "im at {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fir_apply_is_bitwise_backend_invariant(x in signal_strategy(500)) {
        let filt = FirFilter::band_pass(BandPass::DEFAULT, 0.01, WindowKind::Hamming).unwrap();
        bits_eq(&filt.apply_with(&x, S), &filt.apply_with(&x, V));
        bits_eq(&filt.apply_fft_with(&x, S), &filt.apply_fft_with(&x, V));
    }

    #[test]
    fn convolve_direct_is_bitwise_backend_invariant(
        a in signal_strategy(300),
        b in signal_strategy(80),
    ) {
        bits_eq(&convolve_direct_with(&a, &b, S), &convolve_direct_with(&a, &b, V));
        bits_eq(&fft_convolve_with(&a, &b, S), &fft_convolve_with(&a, &b, V));
    }

    #[test]
    fn frequency_gain_is_bitwise_backend_invariant(
        coeffs in signal_strategy(200),
        f in 0.01f64..40.0,
    ) {
        let scalar = frequency_gain_with(&coeffs, f, 0.01, S);
        let simd = frequency_gain_with(&coeffs, f, 0.01, V);
        prop_assert_eq!(scalar.to_bits(), simd.to_bits(), "{} vs {}", scalar, simd);
    }

    #[test]
    fn fft_roundtrip_is_bitwise_backend_invariant(x in complex_signal_strategy(300)) {
        // Lengths 1..300 exercise both the pure radix-2 path and Bluestein.
        let fwd_s = fft_with(&x, S);
        let fwd_v = fft_with(&x, V);
        complex_bits_eq(&fwd_s, &fwd_v);
        complex_bits_eq(&ifft_with(&fwd_s, S), &ifft_with(&fwd_s, V));
    }

    #[test]
    fn rfft_roundtrip_is_bitwise_backend_invariant(x in signal_strategy(300)) {
        let fwd_s = rfft_with(&x, S);
        let fwd_v = rfft_with(&x, V);
        complex_bits_eq(&fwd_s, &fwd_v);
        bits_eq(&irfft_with(&fwd_s, S), &irfft_with(&fwd_s, V));
    }

    #[test]
    fn response_spectrum_is_bitwise_backend_invariant(
        acc in prop::collection::vec(-500.0f64..500.0, 16..300),
        n_periods in 1usize..11,
        damping in 0.01f64..0.2,
        method_nj in any::<bool>(),
    ) {
        // 1..=10 periods exercises full 4-lane blocks and every tail length.
        let periods: Vec<f64> = (1..=n_periods).map(|i| 0.05 * i as f64).collect();
        let method = if method_nj {
            ResponseMethod::NigamJennings
        } else {
            ResponseMethod::Duhamel
        };
        let rs = response_spectrum_with(&acc, 0.01, &periods, damping, method, S).unwrap();
        let rv = response_spectrum_with(&acc, 0.01, &periods, damping, method, V).unwrap();
        bits_eq(&rs.sd, &rv.sd);
        bits_eq(&rs.sv, &rv.sv);
        bits_eq(&rs.sa, &rv.sa);
    }

    #[test]
    fn fourier_spectrum_is_bitwise_backend_invariant(x in signal_strategy(400)) {
        let fs = fourier_spectrum_with(&x, 0.005, S).unwrap();
        let fv = fourier_spectrum_with(&x, 0.005, V).unwrap();
        bits_eq(&fs.frequency_hz, &fv.frequency_hz);
        bits_eq(&fs.acceleration, &fv.acceleration);
        bits_eq(&fs.velocity, &fv.velocity);
        bits_eq(&fs.displacement, &fv.displacement);
    }

    #[test]
    fn auto_backend_is_bitwise_equal_to_simd(x in signal_strategy(300)) {
        // `Auto` must resolve to the same kernels as an explicit `simd`.
        let filt = FirFilter::band_pass(BandPass::DEFAULT, 0.01, WindowKind::Hamming).unwrap();
        bits_eq(&filt.apply_with(&x, DspBackend::Auto), &filt.apply_with(&x, V));
    }
}
