//! Property tests for the FFT engine.

use arp_dsp::complex::Complex;
use arp_dsp::fft::{dft_naive, fft, fft_convolve, ifft, irfft, rfft};
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

fn complex_signal_strategy(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ifft_inverts_fft(x in complex_signal_strategy(200)) {
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(x.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6_f64.max(1e-9 * b.re.abs()));
            prop_assert!((a.im - b.im).abs() < 1e-6_f64.max(1e-9 * b.im.abs()));
        }
    }

    #[test]
    fn fft_matches_naive_dft(x in complex_signal_strategy(64)) {
        let fast = fft(&x);
        let slow = dft_naive(&x);
        let scale: f64 = x.iter().map(|z| z.abs()).sum::<f64>().max(1.0);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-8 * scale, "{a:?} vs {b:?}");
            prop_assert!((a.im - b.im).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn parseval_energy_conserved(x in complex_signal_strategy(128)) {
        let n = x.len() as f64;
        let spec = fft(&x);
        let et: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((et - ef).abs() <= 1e-6 * et.max(1.0));
    }

    #[test]
    fn rfft_spectrum_is_conjugate_symmetric(x in signal_strategy(150)) {
        let n = x.len();
        let spec = rfft(&x);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            let scale = a.abs().max(1.0);
            prop_assert!((a.re - b.re).abs() < 1e-7 * scale);
            prop_assert!((a.im - b.im).abs() < 1e-7 * scale);
        }
        let back = irfft(&spec);
        for (u, v) in back.iter().zip(x.iter()) {
            prop_assert!((u - v).abs() < 1e-6_f64.max(1e-9 * v.abs()));
        }
    }

    #[test]
    fn convolution_matches_direct(
        a in signal_strategy(40),
        b in signal_strategy(40),
    ) {
        let fast = fft_convolve(&a, &b);
        let mut slow = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                slow[i + j] += x * y;
            }
        }
        let scale: f64 = slow.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prop_assert_eq!(fast.len(), slow.len());
        for (u, v) in fast.iter().zip(slow.iter()) {
            prop_assert!((u - v).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn fft_linearity(
        pair in complex_signal_strategy(100).prop_flat_map(|x| {
            let n = x.len();
            (Just(x), complex_signal_strategy(n + 1).prop_map(move |mut y| {
                y.resize(n, Complex::ZERO);
                y
            }))
        }),
        alpha in -10.0f64..10.0,
    ) {
        let (x, y) = pair;
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a.scale(alpha) + b).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let scale: f64 = lhs.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for k in 0..x.len() {
            let rhs = fx[k].scale(alpha) + fy[k];
            prop_assert!((lhs[k].re - rhs.re).abs() < 1e-7 * scale);
            prop_assert!((lhs[k].im - rhs.im).abs() < 1e-7 * scale);
        }
    }
}
