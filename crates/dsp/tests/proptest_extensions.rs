//! Property tests for the extension modules: IIR filters, RotD, smoothing,
//! STA/LTA, and cross-correlation.

use arp_dsp::iir::IirFilter;
use arp_dsp::respspec::{sdof_peaks, ResponseMethod};
use arp_dsp::rotd::rotd_sd;
use arp_dsp::smoothing::konno_ohmachi;
use arp_dsp::trigger::{detect_triggers, StaLtaConfig};
use arp_dsp::window::{bessel_i0, WindowKind};
use arp_dsp::xcorr::{best_alignment, cross_correlate, cross_correlate_direct};
use proptest::prelude::*;

fn signal(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn iir_designs_are_stable_and_band_passing(
        order in 1usize..8,
        f_lo in 0.1f64..2.0,
        bw in 1.0f64..15.0,
    ) {
        let dt = 0.005; // 200 sps, Nyquist 100 Hz
        let f_hi = f_lo + bw;
        let filt = IirFilter::butterworth_band_pass(order, f_lo, f_hi, dt).unwrap();
        prop_assert!(filt.is_stable());
        prop_assert_eq!(filt.sections(), order);
        // Unit gain at the geometric center, attenuation far outside.
        let fc = (f_lo * f_hi).sqrt();
        prop_assert!((filt.gain_at(fc) - 1.0).abs() < 1e-6);
        prop_assert!(filt.gain_at(f_lo / 20.0) < 0.5);
        prop_assert!(filt.gain_at((f_hi * 4.0).min(95.0)) < 0.8);
    }

    #[test]
    fn iir_filtering_is_linear(x in signal(16..200), k in -4.0f64..4.0) {
        let filt = IirFilter::butterworth_band_pass(3, 0.5, 20.0, 0.01).unwrap();
        let fx = filt.filtfilt(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let fs = filt.filtfilt(&scaled);
        let scale = fx.iter().fold(1.0f64, |m, v| m.max(v.abs())) * k.abs().max(1.0);
        for (a, b) in fs.iter().zip(fx.iter()) {
            prop_assert!((a - b * k).abs() <= 1e-7 * scale.max(1.0));
        }
    }

    #[test]
    fn rotd_ordering_always_holds(
        a in signal(32..150),
        period in 0.2f64..3.0,
        angles in 2usize..12,
    ) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let r = rotd_sd(&a, &b, 0.01, period, 0.05, angles, ResponseMethod::NigamJennings).unwrap();
        prop_assert!(r.rotd00 <= r.rotd50 + 1e-12);
        prop_assert!(r.rotd50 <= r.rotd100 + 1e-12);
        prop_assert!(r.rotd00 >= 0.0);
        // RotD100 bounded by the worst single-component response times sqrt(2)
        // (the rotated trace is a unit-norm combination of the components).
        let pa = sdof_peaks(&a, 0.01, period, 0.05, ResponseMethod::NigamJennings).unwrap().sd;
        let pb = sdof_peaks(&b, 0.01, period, 0.05, ResponseMethod::NigamJennings).unwrap().sd;
        prop_assert!(r.rotd100 <= (pa + pb) * 1.0000001);
    }

    #[test]
    fn konno_ohmachi_preserves_bounds(amp in signal(8..150), bw in 5.0f64..80.0) {
        let freq: Vec<f64> = (0..amp.len()).map(|i| 0.1 + i as f64 * 0.1).collect();
        let smoothed = konno_ohmachi(&freq, &amp, bw).unwrap();
        let lo = amp.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = amp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(smoothed.len(), amp.len());
        for v in &smoothed {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
    }

    #[test]
    fn sta_lta_ratio_is_nonnegative_and_triggers_are_ordered(
        x in signal(2200..3000),
    ) {
        let cfg = StaLtaConfig {
            sta_seconds: 0.5,
            lta_seconds: 10.0,
            trigger_on: 3.0,
            trigger_off: 1.5,
        };
        let triggers = detect_triggers(&x, 0.01, &cfg).unwrap();
        let mut last_end = f64::NEG_INFINITY;
        for t in &triggers {
            prop_assert!(t.onset >= 0.0);
            prop_assert!(t.end >= t.onset);
            prop_assert!(t.onset >= last_end, "overlapping triggers");
            prop_assert!(t.peak_ratio >= cfg.trigger_on);
            last_end = t.end;
        }
    }

    #[test]
    fn xcorr_fft_matches_direct(a in signal(2..60), b in signal(2..60)) {
        let fast = cross_correlate(&a, &b);
        let slow = cross_correlate_direct(&a, &b);
        let scale = slow.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(slow.iter()) {
            prop_assert!((x - y).abs() < 1e-7 * scale);
        }
    }

    #[test]
    fn alignment_coefficient_is_bounded(a in signal(8..100), b in signal(8..100)) {
        let n = a.len().min(b.len());
        let (lag, coef) = best_alignment(&a[..n], &b[..n]).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&coef), "coef {coef}");
        prop_assert!(lag.unsigned_abs() < n);
    }

    #[test]
    fn bessel_i0_monotone_and_even_argument_growth(x in 0.0f64..20.0, dx in 0.01f64..5.0) {
        // I0 is increasing on [0, inf) and >= 1.
        let a = bessel_i0(x);
        let b = bessel_i0(x + dx);
        prop_assert!(a >= 1.0);
        prop_assert!(b > a);
    }

    #[test]
    fn kaiser_window_bounded_unit(beta in 0.0f64..15.0, len in 2usize..80) {
        let w = WindowKind::Kaiser(beta).samples(len);
        for v in &w {
            prop_assert!(*v >= -1e-12 && *v <= 1.0 + 1e-12);
        }
    }
}
