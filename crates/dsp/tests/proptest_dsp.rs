//! Property tests for filtering, baseline correction, integration, peaks,
//! and response spectra.

use arp_dsp::baseline::{remove_baseline, Baseline};
use arp_dsp::fir::{BandPass, FirFilter};
use arp_dsp::integrate::{acc_to_vel_disp, cumtrapz, differentiate};
use arp_dsp::peaks::{intensity_measures, peak_values};
use arp_dsp::respspec::{sdof_peaks, ResponseMethod};
use arp_dsp::spectrum::smooth_moving_average;
use arp_dsp::window::WindowKind;
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-500.0f64..500.0, 16..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_detrend_is_idempotent(mut x in record_strategy()) {
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        let once = x.clone();
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        let scale = once.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in once.iter().zip(x.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn detrend_removes_any_affine_part(
        x in record_strategy(),
        offset in -1e3f64..1e3,
        slope in -10f64..10.0,
    ) {
        // detrend(x + affine) == detrend(x)
        let mut plain = x.clone();
        remove_baseline(&mut plain, Baseline::Linear).unwrap();
        let mut shifted: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + offset + slope * i as f64)
            .collect();
        remove_baseline(&mut shifted, Baseline::Linear).unwrap();
        let scale = plain.iter().fold(1.0f64, |m, v| m.max(v.abs())) + offset.abs() + slope.abs() * x.len() as f64;
        for (a, b) in plain.iter().zip(shifted.iter()) {
            prop_assert!((a - b).abs() < 1e-8 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn filtering_is_linear_and_bounded(x in record_strategy(), k in -5.0f64..5.0) {
        let dt = 0.01;
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        let fx = filt.apply_fft(&x);
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let fs = filt.apply_fft(&scaled);
        let scale = fx.iter().fold(1.0f64, |m, v| m.max(v.abs())) * k.abs().max(1.0);
        for (a, b) in fs.iter().zip(fx.iter()) {
            prop_assert!((a - b * k).abs() < 1e-7 * scale.max(1.0));
        }
        // Output magnitude is bounded by input magnitude times the filter's
        // l1 norm.
        let l1: f64 = filt.coeffs().iter().map(|c| c.abs()).sum();
        let in_max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for v in &fx {
            prop_assert!(v.abs() <= l1 * in_max + 1e-9);
        }
    }

    #[test]
    fn integration_roundtrip_is_exact_smoother(x in record_strategy()) {
        // The central difference of the trapezoidal cumulative integral is
        // exactly the 1-2-1 smoothing of the input at interior points.
        let dt = 0.02;
        let integral = cumtrapz(&x, dt).unwrap();
        let back = differentiate(&integral, dt).unwrap();
        let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for i in 1..x.len() - 1 {
            let smoothed = (x[i - 1] + 2.0 * x[i] + x[i + 1]) / 4.0;
            prop_assert!(
                (back[i] - smoothed).abs() <= 1e-9 * scale.max(1.0),
                "at {i}: {} vs {smoothed}",
                back[i]
            );
        }
    }

    #[test]
    fn peaks_are_consistent(x in record_strategy()) {
        let dt = 0.01;
        let p = peak_values(&x, dt).unwrap();
        let (vel, disp) = acc_to_vel_disp(&x, dt).unwrap();
        prop_assert_eq!(p.pga, x.iter().fold(0.0f64, |m, &v| m.max(v.abs())));
        prop_assert!(p.pgv >= vel.iter().fold(0.0f64, |m, &v| m.max(v.abs())) - 1e-12);
        prop_assert!(p.pgd >= disp.iter().fold(0.0f64, |m, &v| m.max(v.abs())) - 1e-12);
        prop_assert!(p.pga_time >= 0.0 && p.pga_time <= x.len() as f64 * dt);
    }

    #[test]
    fn intensity_measures_are_nonnegative_and_ordered(x in record_strategy()) {
        let m = intensity_measures(&x, 0.01).unwrap();
        prop_assert!(m.arias >= 0.0);
        prop_assert!(m.cav >= 0.0);
        prop_assert!(m.arms >= 0.0);
        prop_assert!(m.duration_575 <= m.duration_595 + 1e-12);
    }

    #[test]
    fn response_scales_linearly(x in record_strategy(), k in 0.1f64..10.0) {
        let dt = 0.01;
        let a = sdof_peaks(&x, dt, 0.5, 0.05, ResponseMethod::NigamJennings).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| v * k).collect();
        let b = sdof_peaks(&scaled, dt, 0.5, 0.05, ResponseMethod::NigamJennings).unwrap();
        prop_assert!((b.sd - a.sd * k).abs() <= 1e-9 * (a.sd * k).max(1e-12));
        prop_assert!((b.sa - a.sa * k).abs() <= 1e-9 * (a.sa * k).max(1e-12));
    }

    #[test]
    fn damping_monotonically_reduces_displacement_response(x in record_strategy()) {
        let dt = 0.01;
        // Strict damping monotonicity holds for steady-state (tested with
        // harmonic input in the unit suite); for arbitrary short transients
        // the peak can wobble slightly, so assert the bounded version here.
        let mut last = f64::INFINITY;
        for z in [0.02, 0.10, 0.30] {
            let p = sdof_peaks(&x, dt, 0.8, z, ResponseMethod::NigamJennings).unwrap();
            prop_assert!(p.sd <= last * 1.25 + 1e-12, "z={z}: {} vs {}", p.sd, last);
            last = p.sd;
        }
    }

    #[test]
    fn smoothing_preserves_bounds(x in record_strategy(), hw in 0usize..8) {
        let y = smooth_moving_average(&x, hw);
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(y.len(), x.len());
        for v in &y {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
    }
}
