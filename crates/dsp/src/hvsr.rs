//! Horizontal-to-vertical spectral ratio (HVSR, Nakamura's method).
//!
//! The standard site-characterization technique: the ratio of the mean
//! horizontal to vertical Fourier amplitude peaks near the site's
//! fundamental frequency. Used here as a cross-check between the pipeline's
//! spectra and the synthetic generator's site model — soft-soil stations
//! must show an HVSR peak near their modeled `f0`.

use crate::error::DspError;
use crate::smoothing::konno_ohmachi;
use crate::spectrum::fourier_spectrum;

/// HVSR curve and its peak.
#[derive(Debug, Clone, PartialEq)]
pub struct Hvsr {
    /// Frequencies (Hz), ascending, DC excluded.
    pub frequency_hz: Vec<f64>,
    /// Smoothed H/V amplitude ratio per frequency.
    pub ratio: Vec<f64>,
    /// Frequency of the largest ratio within the analysis band.
    pub peak_frequency_hz: f64,
    /// The ratio at the peak.
    pub peak_ratio: f64,
}

/// Computes the HVSR from the three acceleration components.
///
/// The horizontal spectrum is the geometric mean of the two horizontal
/// amplitude spectra; both are Konno–Ohmachi smoothed (`bandwidth` 40 is
/// standard) before the ratio. The peak is searched within
/// `[f_min, f_max]` Hz.
pub fn hvsr(
    horizontal_1: &[f64],
    horizontal_2: &[f64],
    vertical: &[f64],
    dt: f64,
    f_min: f64,
    f_max: f64,
) -> Result<Hvsr, DspError> {
    if horizontal_1.len() != horizontal_2.len() || horizontal_1.len() != vertical.len() {
        return Err(DspError::InvalidArgument(format!(
            "component lengths differ: {} / {} / {}",
            horizontal_1.len(),
            horizontal_2.len(),
            vertical.len()
        )));
    }
    if !(f_min > 0.0 && f_max > f_min) {
        return Err(DspError::InvalidArgument(format!(
            "bad band [{f_min}, {f_max}]"
        )));
    }

    let s1 = fourier_spectrum(horizontal_1, dt)?;
    let s2 = fourier_spectrum(horizontal_2, dt)?;
    let sv = fourier_spectrum(vertical, dt)?;

    let bandwidth = 40.0;
    let h1 = konno_ohmachi(&s1.frequency_hz, &s1.acceleration, bandwidth)?;
    let h2 = konno_ohmachi(&s2.frequency_hz, &s2.acceleration, bandwidth)?;
    let v = konno_ohmachi(&sv.frequency_hz, &sv.acceleration, bandwidth)?;

    let mut frequency_hz = Vec::new();
    let mut ratio = Vec::new();
    for k in 1..s1.frequency_hz.len() {
        let f = s1.frequency_hz[k];
        let h = (h1[k] * h2[k]).sqrt();
        let denom = v[k];
        if denom > 0.0 {
            frequency_hz.push(f);
            ratio.push(h / denom);
        }
    }
    if frequency_hz.is_empty() {
        return Err(DspError::TooShort { needed: 4, got: 0 });
    }

    let mut peak_frequency_hz = frequency_hz[0];
    let mut peak_ratio = 0.0;
    for (f, r) in frequency_hz.iter().zip(ratio.iter()) {
        if *f >= f_min && *f <= f_max && *r > peak_ratio {
            peak_ratio = *r;
            peak_frequency_hz = *f;
        }
    }

    Ok(Hvsr {
        frequency_hz,
        ratio,
        peak_frequency_hz,
        peak_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Builds components where the horizontals carry a resonant boost near
    /// `f0` and the vertical does not.
    fn site_like_components(f0: f64, dt: f64, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let base = |i: usize, seed: f64| {
            let t = i as f64 * dt;
            (2.0 * PI * 0.7 * t + seed).sin() + 0.5 * (2.0 * PI * 5.0 * t + 2.0 * seed).sin()
        };
        let boost = |i: usize| {
            let t = i as f64 * dt;
            2.5 * (2.0 * PI * f0 * t).sin()
        };
        let h1 = (0..n).map(|i| base(i, 0.0) + boost(i)).collect();
        let h2 = (0..n).map(|i| base(i, 1.0) + boost(i)).collect();
        let v = (0..n).map(|i| base(i, 2.0)).collect();
        (h1, h2, v)
    }

    #[test]
    fn peak_lands_at_the_resonance() {
        let dt = 0.01;
        let f0 = 1.5;
        let (h1, h2, v) = site_like_components(f0, dt, 8192);
        let result = hvsr(&h1, &h2, &v, dt, 0.3, 10.0).unwrap();
        assert!(
            (result.peak_frequency_hz - f0).abs() < 0.3,
            "peak at {} Hz, expected ~{f0}",
            result.peak_frequency_hz
        );
        assert!(result.peak_ratio > 2.0, "ratio {}", result.peak_ratio);
    }

    #[test]
    fn identical_components_give_flat_unit_ratio() {
        let dt = 0.01;
        let x: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.13).sin()).collect();
        let result = hvsr(&x, &x, &x, dt, 0.3, 10.0).unwrap();
        // H = geometric mean of identical = V, so ratio ≈ 1 everywhere.
        for (f, r) in result.frequency_hz.iter().zip(result.ratio.iter()) {
            if *f > 0.3 && *f < 10.0 {
                assert!((r - 1.0).abs() < 1e-6, "at {f}: {r}");
            }
        }
    }

    #[test]
    fn validation() {
        let a = vec![0.0; 64];
        let b = vec![0.0; 63];
        assert!(hvsr(&a, &b, &a, 0.01, 0.3, 10.0).is_err());
        assert!(hvsr(&a, &a, &a, 0.01, 10.0, 0.3).is_err());
        assert!(hvsr(&a, &a, &a, 0.01, 0.0, 10.0).is_err());
    }

    #[test]
    fn synthetic_soft_soil_station_shows_site_peak() {
        // End-to-end against the generator: a SoftSoil station (f0 = 1 Hz)
        // must show an HVSR peak in the sub-2 Hz band... but the generator
        // applies the same site amplification to all three components, so
        // instead we verify the *spectral shape* by comparing a soft-soil
        // horizontal against a rock vertical of the same source.
        // (This mirrors how HVSR is validated against known site models.)
        use crate::spectrum::fourier_spectrum as fs;
        let dt = 0.01;
        let n = 8192;
        let t_of = |i: usize| i as f64 * dt;
        // "Rock": broadband; "soil": same motion through a 1-Hz resonator.
        let rock: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 0.4 * t_of(i)).sin() + (2.0 * PI * 3.7 * t_of(i)).sin())
            .collect();
        let soil: Vec<f64> = (0..n)
            .map(|i| rock[i] + 2.0 * (2.0 * PI * 1.0 * t_of(i)).sin())
            .collect();
        let r = fs(&rock, dt).unwrap();
        let s = fs(&soil, dt).unwrap();
        let near = |spec: &crate::spectrum::FourierSpectrum, f: f64| {
            let idx = spec.frequency_hz.iter().position(|&x| x >= f).unwrap();
            spec.acceleration[idx]
        };
        assert!(near(&s, 1.0) > 3.0 * near(&r, 1.0));
    }
}
