//! DSP backend selection: scalar vs explicit 4-lane (SIMD-shaped) kernels.
//!
//! Every vectorized kernel in this crate exists in two forms that share one
//! *blocked accumulation order*: a scalar form that processes one element at
//! a time, and a 4-lane form that processes four independent chains at once
//! (written so LLVM lowers the lane arithmetic to packed f64 instructions on
//! targets that have them). Because both forms perform the exact same IEEE
//! operations in the exact same order per output element — lane arithmetic
//! is element-wise, and Rust does not contract `a * b + c` into FMA — the
//! two backends produce **bitwise-identical** `f64` results. That is the
//! contract this module's selector exposes: choosing a backend changes
//! throughput, never output bytes.
//!
//! The selector is plumbed from the CLI (`--dsp-backend`) through
//! `PipelineConfig` into the hot kernels ([`crate::fir`], [`crate::fft`],
//! [`crate::respspec`], [`crate::spectrum`]).

use std::fmt;
use std::str::FromStr;

/// Which kernel implementation services the DSP hot paths.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum DspBackend {
    /// Pick automatically. Since the lane kernels are plain stable Rust with
    /// no target-feature requirements (and bitwise-equal to scalar), `Auto`
    /// resolves to [`DspBackend::Simd`] everywhere.
    #[default]
    Auto,
    /// One element at a time. Kept as the reference implementation and as
    /// the baseline row of the scalar-vs-SIMD ablation benches.
    Scalar,
    /// Explicit f64×4-lane kernels (hand-blocked accumulators).
    Simd,
}

impl DspBackend {
    /// Resolves `Auto` to the concrete backend used for execution.
    #[inline]
    pub fn resolve(self) -> DspBackend {
        match self {
            DspBackend::Auto | DspBackend::Simd => DspBackend::Simd,
            DspBackend::Scalar => DspBackend::Scalar,
        }
    }

    /// True when the resolved backend is the 4-lane one.
    #[inline]
    pub fn is_simd(self) -> bool {
        self.resolve() == DspBackend::Simd
    }

    /// Canonical lower-case name (`auto` / `scalar` / `simd`).
    pub fn as_str(self) -> &'static str {
        match self {
            DspBackend::Auto => "auto",
            DspBackend::Scalar => "scalar",
            DspBackend::Simd => "simd",
        }
    }
}

impl fmt::Display for DspBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DspBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(DspBackend::Auto),
            "scalar" => Ok(DspBackend::Scalar),
            "simd" => Ok(DspBackend::Simd),
            other => Err(format!(
                "unknown DSP backend '{other}' (expected auto|scalar|simd)"
            )),
        }
    }
}

/// Lane width of the blocked kernels. All 4-lane code in this crate blocks
/// by this constant so the scalar remainder loops stay in lockstep with it.
pub const LANES: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_simd() {
        assert_eq!(DspBackend::Auto.resolve(), DspBackend::Simd);
        assert_eq!(DspBackend::Simd.resolve(), DspBackend::Simd);
        assert_eq!(DspBackend::Scalar.resolve(), DspBackend::Scalar);
        assert!(DspBackend::Auto.is_simd());
        assert!(!DspBackend::Scalar.is_simd());
    }

    #[test]
    fn round_trips_names() {
        for b in [DspBackend::Auto, DspBackend::Scalar, DspBackend::Simd] {
            assert_eq!(b.as_str().parse::<DspBackend>().unwrap(), b);
        }
        assert_eq!("SIMD".parse::<DspBackend>().unwrap(), DspBackend::Simd);
        assert!("sse9".parse::<DspBackend>().is_err());
    }
}
