//! STA/LTA event-onset detection.
//!
//! The classic short-term-average / long-term-average trigger used across
//! observational seismology (Earthworm, SeisComP, ObsPy — the systems the
//! paper's related-work section surveys). The pipeline uses it as a
//! quality-assurance extension: locating the event onset in a V1 record
//! validates that the synthetic generator's envelope behaves like a real
//! record's, and lets downstream consumers trim pre-event noise.

use crate::error::DspError;

/// STA/LTA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaLtaConfig {
    /// Short-window length in seconds (energy follower).
    pub sta_seconds: f64,
    /// Long-window length in seconds (noise context); must exceed the STA.
    pub lta_seconds: f64,
    /// Ratio above which the trigger turns on (typical 3–5).
    pub trigger_on: f64,
    /// Ratio below which the trigger turns off (typical 1–2).
    pub trigger_off: f64,
}

impl Default for StaLtaConfig {
    fn default() -> Self {
        StaLtaConfig {
            sta_seconds: 0.5,
            lta_seconds: 10.0,
            trigger_on: 3.5,
            trigger_off: 1.5,
        }
    }
}

impl StaLtaConfig {
    fn validate(&self, dt: f64, n: usize) -> Result<(usize, usize), DspError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(DspError::InvalidSampling(dt));
        }
        if !(self.sta_seconds > 0.0 && self.lta_seconds > self.sta_seconds) {
            return Err(DspError::InvalidArgument(format!(
                "need 0 < sta ({}) < lta ({})",
                self.sta_seconds, self.lta_seconds
            )));
        }
        if !(self.trigger_off > 0.0 && self.trigger_on > self.trigger_off) {
            return Err(DspError::InvalidArgument(format!(
                "need 0 < off ({}) < on ({})",
                self.trigger_off, self.trigger_on
            )));
        }
        let sta_n = (self.sta_seconds / dt).round().max(1.0) as usize;
        let lta_n = (self.lta_seconds / dt).round().max(2.0) as usize;
        if n < lta_n + sta_n {
            return Err(DspError::TooShort {
                needed: lta_n + sta_n,
                got: n,
            });
        }
        Ok((sta_n, lta_n))
    }
}

/// The classic recursive STA/LTA characteristic function: the ratio of the
/// short-window to long-window mean energy at each sample (0 before the
/// LTA window is filled).
pub fn sta_lta_ratio(x: &[f64], dt: f64, config: &StaLtaConfig) -> Result<Vec<f64>, DspError> {
    let (sta_n, lta_n) = config.validate(dt, x.len())?;
    let energy: Vec<f64> = x.iter().map(|v| v * v).collect();

    // Prefix sums for O(1) window means.
    let mut prefix = Vec::with_capacity(energy.len() + 1);
    prefix.push(0.0);
    for &e in &energy {
        prefix.push(prefix.last().unwrap() + e);
    }
    let window_mean = |end: usize, len: usize| -> f64 {
        let start = end + 1 - len;
        (prefix[end + 1] - prefix[start]) / len as f64
    };

    let mut out = vec![0.0; x.len()];
    #[allow(clippy::needless_range_loop)] // windows are addressed by absolute sample index
    for i in lta_n + sta_n - 1..x.len() {
        let sta = window_mean(i, sta_n);
        // LTA over the window *preceding* the STA window, so the burst
        // itself doesn't inflate the noise estimate.
        let lta_end = i - sta_n;
        let lta = window_mean(lta_end, lta_n);
        out[i] = if lta > 0.0 { sta / lta } else { 0.0 };
    }
    Ok(out)
}

/// A detected trigger window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trigger {
    /// Onset time (s) — first sample where the ratio crossed `trigger_on`.
    pub onset: f64,
    /// End time (s) — first later sample where it fell below `trigger_off`
    /// (record end if it never does).
    pub end: f64,
    /// Peak STA/LTA ratio within the window.
    pub peak_ratio: f64,
}

/// Detects trigger windows in an acceleration record.
pub fn detect_triggers(
    x: &[f64],
    dt: f64,
    config: &StaLtaConfig,
) -> Result<Vec<Trigger>, DspError> {
    let ratio = sta_lta_ratio(x, dt, config)?;
    let mut triggers = Vec::new();
    let mut active: Option<(usize, f64)> = None;
    for (i, &r) in ratio.iter().enumerate() {
        match active {
            None if r >= config.trigger_on => active = Some((i, r)),
            Some((onset, peak)) if r < config.trigger_off => {
                triggers.push(Trigger {
                    onset: onset as f64 * dt,
                    end: i as f64 * dt,
                    peak_ratio: peak,
                });
                active = None;
            }
            Some((onset, peak)) => active = Some((onset, peak.max(r))),
            None => {}
        }
    }
    if let Some((onset, peak)) = active {
        triggers.push(Trigger {
            onset: onset as f64 * dt,
            end: (ratio.len() - 1) as f64 * dt,
            peak_ratio: peak,
        });
    }
    Ok(triggers)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quiet noise with a burst in the middle.
    fn burst_record(dt: f64, n: usize, burst_start: usize, burst_len: usize) -> Vec<f64> {
        (0..n)
            .map(|i: usize| {
                let noise = ((i.wrapping_mul(2654435761usize)) % 1000) as f64 / 1000.0 - 0.5;
                let in_burst = i >= burst_start && i < burst_start + burst_len;
                noise * 0.02
                    + if in_burst {
                        (i as f64 * dt * 40.0).sin() * 2.0
                    } else {
                        0.0
                    }
            })
            .collect()
    }

    #[test]
    fn detects_single_burst_near_its_onset() {
        let dt = 0.01;
        let n = 8000;
        let burst_start = 4000;
        let x = burst_record(dt, n, burst_start, 1500);
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert_eq!(triggers.len(), 1, "{triggers:?}");
        let t = triggers[0];
        let expected_onset = burst_start as f64 * dt;
        assert!(
            (t.onset - expected_onset).abs() < 1.0,
            "onset {} vs {}",
            t.onset,
            expected_onset
        );
        assert!(t.end > t.onset);
        assert!(t.peak_ratio > StaLtaConfig::default().trigger_on);
    }

    #[test]
    fn quiet_record_has_no_triggers() {
        let dt = 0.01;
        let x: Vec<f64> = (0usize..5000)
            .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert!(triggers.is_empty(), "{triggers:?}");
    }

    #[test]
    fn two_bursts_give_two_triggers() {
        let dt = 0.01;
        let n = 20_000;
        let mut x = burst_record(dt, n, 5000, 800);
        let second = burst_record(dt, n, 14_000, 800);
        for (a, b) in x.iter_mut().zip(second.iter()) {
            // Combine the burst portions (noise already present in x).
            if b.abs() > 0.5 {
                *a += b;
            }
        }
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert_eq!(triggers.len(), 2, "{triggers:?}");
        assert!(triggers[1].onset > triggers[0].end);
    }

    #[test]
    fn trigger_running_at_record_end_is_closed() {
        let dt = 0.01;
        let n = 6000;
        // Burst in the last five seconds: the LTA window never fills with
        // burst energy, so the trigger is still active at the record end
        // and must be closed there.
        let x = burst_record(dt, n, 5500, 500);
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert_eq!(triggers.len(), 1, "{triggers:?}");
        assert!(
            (triggers[0].end - (n - 1) as f64 * dt).abs() < 1e-9,
            "{:?}",
            triggers[0]
        );
    }

    #[test]
    fn long_burst_detriggers_when_lta_adapts() {
        // A burst much longer than the LTA window: the noise estimate
        // adapts and the trigger closes well before the burst ends — the
        // classic STA/LTA behavior.
        let dt = 0.01;
        let n = 6000;
        let x = burst_record(dt, n, 3000, 3000);
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert_eq!(triggers.len(), 1, "{triggers:?}");
        assert!(
            triggers[0].end < (n - 1) as f64 * dt - 1.0,
            "{:?}",
            triggers[0]
        );
    }

    #[test]
    fn ratio_is_zero_before_windows_fill() {
        let dt = 0.01;
        let x = burst_record(dt, 4000, 2000, 500);
        let cfg = StaLtaConfig::default();
        let ratio = sta_lta_ratio(&x, dt, &cfg).unwrap();
        let warmup = ((cfg.lta_seconds + cfg.sta_seconds) / dt) as usize - 1;
        assert!(ratio[..warmup].iter().all(|&r| r == 0.0));
        assert!(ratio[warmup..].iter().any(|&r| r > 0.0));
    }

    #[test]
    fn validation() {
        let x = vec![0.0; 100];
        let cfg = StaLtaConfig::default();
        assert!(detect_triggers(&x, 0.0, &cfg).is_err());
        assert!(detect_triggers(&x, 0.01, &cfg).is_err()); // too short
        let long_sta = StaLtaConfig {
            sta_seconds: 20.0,
            ..Default::default()
        }; // > lta
        assert!(detect_triggers(&x, 0.01, &long_sta).is_err());
        let inverted = StaLtaConfig {
            trigger_on: 1.0,
            trigger_off: 2.0, // off > on
            ..Default::default()
        };
        assert!(detect_triggers(&vec![0.0; 5000], 0.01, &inverted).is_err());
    }

    #[test]
    fn synthetic_generator_records_trigger() {
        // The arp-synth envelope should look like a real event to STA/LTA:
        // exactly one onset, near the envelope rise.
        // (Uses a pre-generated record to avoid a circular dev-dependency.)
        let dt = 0.01;
        let n = 12_000;
        let x: Vec<f64> = (0..n)
            .map(|i: usize| {
                let t = i as f64 * dt;
                let env = if t < 30.0 {
                    0.0
                } else {
                    (-(t - 45.0f64).powi(2) / 50.0).exp()
                };
                let noise = ((i.wrapping_mul(2654435761usize)) % 1000) as f64 / 1000.0 - 0.5;
                noise * 0.01 + env * (t * 25.0).sin() * 3.0
            })
            .collect();
        let triggers = detect_triggers(&x, dt, &StaLtaConfig::default()).unwrap();
        assert_eq!(triggers.len(), 1);
        assert!(
            triggers[0].onset > 25.0 && triggers[0].onset < 45.0,
            "{:?}",
            triggers[0]
        );
    }
}
