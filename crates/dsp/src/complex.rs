//! Minimal complex-number arithmetic used by the FFT and spectrum code.
//!
//! Implemented from scratch (rather than pulling in an external crate) so the
//! whole numeric stack of the pipeline is self-contained and auditable.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}`: the unit complex number at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Reciprocal `1/z`. Returns NaN components when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * (1/w)
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from(3.5), Complex::new(3.5, 0.0));
    }

    #[test]
    fn add_sub() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -1.0);
        // (2+3i)(4-i) = 8 - 2i + 12i - 3i^2 = 11 + 10i
        assert_eq!(a * b, Complex::new(11.0, 10.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(5.0, -7.0);
        let b = Complex::new(2.0, 1.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(t);
            assert!(close(z.abs(), 1.0));
            assert!(close(
                z.arg().rem_euclid(2.0 * std::f64::consts::PI),
                t.rem_euclid(2.0 * std::f64::consts::PI)
            ));
        }
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!(close(a.norm_sqr(), 25.0));
        assert!(close(a.abs(), 5.0));
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
    }

    #[test]
    fn recip_of_unit() {
        let z = Complex::cis(1.234);
        let r = z.recip();
        let prod = z * r;
        assert!(close(prod.re, 1.0) && close(prod.im, 0.0));
    }

    #[test]
    fn neg_and_scale() {
        let a = Complex::new(1.5, -2.5);
        assert_eq!(-a, Complex::new(-1.5, 2.5));
        assert_eq!(a.scale(2.0), Complex::new(3.0, -5.0));
        assert_eq!(a * 2.0, a.scale(2.0));
        assert_eq!(a / 2.0, Complex::new(0.75, -1.25));
    }

    #[test]
    fn finite_check() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
