//! Konno–Ohmachi spectral smoothing.
//!
//! The standard smoothing operator of engineering seismology (Konno &
//! Ohmachi, 1998): a window that is symmetric on a logarithmic frequency
//! axis, `W(f, fc) = [sin(b·log10(f/fc)) / (b·log10(f/fc))]^4`, with
//! bandwidth coefficient `b` (typically 20–40). Unlike a moving average it
//! does not over-smooth low frequencies, which matters for the FPL/FSL
//! inflection search on long-period spectra.

use crate::error::DspError;

/// Konno–Ohmachi smoothing of `amplitude` sampled at `frequency_hz`.
///
/// `bandwidth` is the `b` coefficient; larger values smooth less. Frequency
/// samples must be non-negative and ascending. The DC sample (f = 0) is
/// passed through unchanged; windows are renormalized over the available
/// band so edges are unbiased.
pub fn konno_ohmachi(
    frequency_hz: &[f64],
    amplitude: &[f64],
    bandwidth: f64,
) -> Result<Vec<f64>, DspError> {
    if frequency_hz.len() != amplitude.len() {
        return Err(DspError::InvalidArgument(format!(
            "frequency/amplitude length mismatch: {} vs {}",
            frequency_hz.len(),
            amplitude.len()
        )));
    }
    if !(bandwidth.is_finite() && bandwidth > 0.0) {
        return Err(DspError::InvalidArgument(format!(
            "bandwidth {bandwidth} must be positive"
        )));
    }
    if frequency_hz.windows(2).any(|w| w[1] <= w[0]) || frequency_hz.iter().any(|&f| f < 0.0) {
        return Err(DspError::InvalidArgument(
            "frequencies must be non-negative and strictly ascending".into(),
        ));
    }

    let n = frequency_hz.len();
    let mut out = vec![0.0; n];
    for (i, &fc) in frequency_hz.iter().enumerate() {
        if fc <= 0.0 {
            out[i] = amplitude[i];
            continue;
        }
        let mut weight_sum = 0.0;
        let mut acc = 0.0;
        for (j, &f) in frequency_hz.iter().enumerate() {
            if f <= 0.0 {
                continue;
            }
            let w = ko_window(f, fc, bandwidth);
            // Beyond ±3 window half-widths the kernel is negligible;
            // skipping keeps the operator O(n·k) instead of O(n²) for
            // narrow bandwidths.
            if w < 1e-6 {
                continue;
            }
            weight_sum += w;
            acc += w * amplitude[j];
        }
        out[i] = if weight_sum > 0.0 {
            acc / weight_sum
        } else {
            amplitude[i]
        };
    }
    Ok(out)
}

/// The Konno–Ohmachi window value for sample frequency `f` around center
/// `fc`.
#[inline]
pub fn ko_window(f: f64, fc: f64, bandwidth: f64) -> f64 {
    if f == fc {
        return 1.0;
    }
    let x = bandwidth * (f / fc).log10();
    if x.abs() < 1e-12 {
        return 1.0;
    }
    let s = x.sin() / x;
    let s2 = s * s;
    s2 * s2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.1).collect()
    }

    #[test]
    fn window_properties() {
        assert_eq!(ko_window(1.0, 1.0, 20.0), 1.0);
        // Symmetric in log space: W(2fc) == W(fc/2).
        let up = ko_window(2.0, 1.0, 20.0);
        let down = ko_window(0.5, 1.0, 20.0);
        assert!((up - down).abs() < 1e-12);
        // Decays away from the center.
        assert!(ko_window(1.05, 1.0, 20.0) > ko_window(1.5, 1.0, 20.0));
        assert!(ko_window(10.0, 1.0, 20.0) < 1e-3);
    }

    #[test]
    fn constant_spectrum_is_preserved() {
        let f = freqs(200);
        let a = vec![3.0; 200];
        let s = konno_ohmachi(&f, &a, 20.0).unwrap();
        for (i, v) in s.iter().enumerate() {
            assert!((v - 3.0).abs() < 1e-9, "at {i}: {v}");
        }
    }

    #[test]
    fn smooths_oscillation_preserves_trend() {
        let f: Vec<f64> = (1..400).map(|i| i as f64 * 0.05).collect();
        let a: Vec<f64> = f
            .iter()
            .enumerate()
            .map(|(i, &fr)| fr + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let s = konno_ohmachi(&f, &a, 20.0).unwrap();
        // Oscillation suppressed: consecutive differences shrink.
        let rough: f64 = a.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        let smooth: f64 = s.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(smooth < 0.3 * rough, "rough {rough}, smooth {smooth}");
        // Trend preserved in the middle of the band.
        let mid = f.len() / 2;
        assert!((s[mid] - f[mid]).abs() < 0.2, "{} vs {}", s[mid], f[mid]);
    }

    #[test]
    fn dc_passes_through() {
        let f = freqs(50);
        let mut a = vec![1.0; 50];
        a[0] = 42.0;
        let s = konno_ohmachi(&f, &a, 20.0).unwrap();
        assert_eq!(s[0], 42.0);
    }

    #[test]
    fn larger_bandwidth_smooths_less() {
        let f: Vec<f64> = (1..300).map(|i| i as f64 * 0.05).collect();
        let a: Vec<f64> = (0..299)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        let narrow = konno_ohmachi(&f, &a, 10.0).unwrap();
        let wide = konno_ohmachi(&f, &a, 80.0).unwrap();
        assert!(var(&narrow) < var(&wide));
    }

    #[test]
    fn input_validation() {
        assert!(konno_ohmachi(&[1.0, 2.0], &[1.0], 20.0).is_err());
        assert!(konno_ohmachi(&[1.0, 2.0], &[1.0, 2.0], 0.0).is_err());
        assert!(konno_ohmachi(&[2.0, 1.0], &[1.0, 2.0], 20.0).is_err());
        assert!(konno_ohmachi(&[-1.0, 1.0], &[1.0, 2.0], 20.0).is_err());
        assert!(konno_ohmachi(&[], &[], 20.0).unwrap().is_empty());
    }
}
