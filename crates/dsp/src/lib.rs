//! # arp-dsp — signal-processing substrate for strong-motion records
//!
//! Everything numeric the accelerographic-records pipeline needs, implemented
//! from scratch:
//!
//! * [`complex`] / [`fft`] — complex arithmetic and FFTs (radix-2 +
//!   Bluestein for arbitrary lengths), FFT convolution.
//! * [`window`] / [`fir`] — window functions and the windowed-sinc
//!   "Hamming band-pass" filter of processes #4 and #13.
//! * [`baseline`] / [`integrate`] — baseline correction and trapezoidal
//!   integration from acceleration to velocity/displacement.
//! * [`spectrum`] — Fourier amplitude spectra (the `F` files of process #7).
//! * [`inflection`] — FPL/FSL corner extraction from the velocity spectrum
//!   (process #10), with the paper's early-termination search.
//! * [`peaks`] — PGA/PGV/PGD and intensity measures ("max values" files).
//! * [`respspec`] — elastic response spectra (process #16), with both the
//!   legacy `O(D²)`-per-period Duhamel kernel and the exact Nigam–Jennings
//!   recurrence.
//! * [`resample`] / [`stats`] — sampling-rate utilities and statistics.
//! * [`backend`] — the [`DspBackend`] selector: every hot kernel above
//!   exists in a scalar and a 4-lane (SIMD) form sharing one blocked
//!   accumulation order, so the backends are bitwise-equal.

#![warn(missing_docs)]

pub mod backend;
pub mod baseline;
pub mod complex;
pub mod error;
pub mod fft;
pub mod fir;
pub mod hvsr;
pub mod iir;
pub mod inflection;
pub mod integrate;
pub mod peaks;
pub mod resample;
pub mod respspec;
pub mod rotd;
pub mod smoothing;
pub mod spectrum;
pub mod stats;
pub mod trigger;
pub mod window;
pub mod xcorr;

pub use backend::DspBackend;
pub use baseline::{remove_baseline, Baseline};
pub use complex::Complex;
pub use error::DspError;
pub use fir::{BandPass, FirFilter};
pub use hvsr::{hvsr, Hvsr};
pub use iir::IirFilter;
pub use inflection::{find_filter_corners, FilterCorners, InflectionConfig};
pub use peaks::{intensity_measures, peak_values, IntensityMeasures, PeakValues};
pub use respspec::{
    response_spectrum, response_spectrum_with, sdof_peaks, standard_periods, ResponseMethod,
    ResponseSpectrum, STANDARD_DAMPINGS,
};
pub use rotd::{rotd_sd, rotd_spectrum, RotD};
pub use smoothing::konno_ohmachi;
pub use spectrum::{fourier_spectrum, FourierSpectrum};
pub use trigger::{detect_triggers, sta_lta_ratio, StaLtaConfig, Trigger};
pub use window::WindowKind;
pub use xcorr::{best_alignment, cross_correlate};
