//! Cross-correlation and alignment of records.
//!
//! Observatory QA uses cross-correlation to check inter-station timing
//! (GPS-clock faults show up as lags) and to align components before
//! computing combined measures. Both the direct `O(N·L)` form and an
//! FFT-based `O(N log N)` form are provided.

use crate::error::DspError;
use crate::fft::{fft_convolve, next_pow2};

/// Full cross-correlation `r[k] = Σ a[i]·b[i+k-(len_b-1)]` for lags
/// `-(len_b-1) ..= len_a-1`, computed via FFT. Output length is
/// `len_a + len_b - 1`; index `len_b - 1` corresponds to zero lag.
pub fn cross_correlate(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let reversed: Vec<f64> = b.iter().rev().copied().collect();
    fft_convolve(a, &reversed)
}

/// Normalized cross-correlation at the best lag: returns `(lag, coefficient)`
/// where `lag` is the shift (in samples) to apply to `b` so it best aligns
/// with `a`, and `coefficient` is in `[-1, 1]`.
pub fn best_alignment(a: &[f64], b: &[f64]) -> Result<(isize, f64), DspError> {
    if a.len() < 2 || b.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    let r = cross_correlate(a, b);
    let norm_a: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let norm_b: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let denom = norm_a * norm_b;
    if denom <= 0.0 {
        return Ok((0, 0.0));
    }
    let (idx, peak) = r
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap())
        .expect("non-empty correlation");
    let lag = idx as isize - (b.len() as isize - 1);
    Ok((lag, peak / denom))
}

/// Direct-form cross-correlation (reference implementation; used in tests
/// and exposed for the ablation benches).
pub fn cross_correlate_direct(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let mut out = vec![0.0; out_len];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            // lag index: i - j + (len_b - 1)
            out[i + b.len() - 1 - j] += x * y;
        }
    }
    out
}

/// Padded FFT length the correlation uses (exposed for capacity planning).
pub fn correlation_fft_size(len_a: usize, len_b: usize) -> usize {
    next_pow2(len_a + len_b - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_direct() {
        let a: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
        let fast = cross_correlate(&a, &b);
        let slow = cross_correlate_direct(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(slow.iter()) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.17).sin()).collect();
        let (lag, coef) = best_alignment(&a, &a).unwrap();
        assert_eq!(lag, 0);
        assert!((coef - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_known_shift() {
        let n = 400;
        let base: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.01;
                (t * 9.0).sin() * (-(t - 2.0f64).powi(2)).exp()
            })
            .collect();
        for shift in [17isize, -23] {
            let shifted: Vec<f64> = (0..n)
                .map(|i| {
                    let j = i as isize - shift;
                    if (0..n as isize).contains(&j) {
                        base[j as usize]
                    } else {
                        0.0
                    }
                })
                .collect();
            let (lag, coef) = best_alignment(&base, &shifted).unwrap();
            assert_eq!(lag, -shift, "shift {shift}");
            assert!(coef > 0.9, "coef {coef}");
        }
    }

    #[test]
    fn anticorrelated_signals_have_negative_coefficient() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = a.iter().map(|v| -v).collect();
        let (lag, coef) = best_alignment(&a, &b).unwrap();
        assert_eq!(lag, 0);
        assert!((coef + 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(cross_correlate(&[], &[1.0]).is_empty());
        assert!(best_alignment(&[1.0], &[1.0, 2.0]).is_err());
        let zeros = vec![0.0; 16];
        let (lag, coef) = best_alignment(&zeros, &zeros).unwrap();
        assert_eq!((lag, coef), (0, 0.0));
    }

    #[test]
    fn fft_size_is_padded_power_of_two() {
        assert_eq!(correlation_fft_size(100, 50), 256);
        assert_eq!(correlation_fft_size(1, 1), 1);
    }
}
