//! Orientation-independent spectral measures (RotD50 / RotD100).
//!
//! GEM's hazard toolchain consumes RotD-type intensity measures (Boore,
//! 2010): the two horizontal components are rotated through all azimuths,
//! the oscillator response is computed for each rotation, and the
//! percentile over azimuths is reported — RotD100 is the maximum, RotD50
//! the median. This removes the arbitrary as-installed sensor orientation
//! from the measure, an extension the Salvadoran pipeline's GEM consumers
//! ask for.

use crate::error::DspError;
use crate::respspec::{sdof_peaks, ResponseMethod};

/// RotD percentile results for one oscillator period.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RotD {
    /// Oscillator period (s).
    pub period: f64,
    /// Median over rotation angles (RotD50).
    pub rotd50: f64,
    /// Maximum over rotation angles (RotD100).
    pub rotd100: f64,
    /// Minimum over rotation angles (RotD00).
    pub rotd00: f64,
}

/// Computes RotD spectral-displacement percentiles at one period from two
/// orthogonal horizontal acceleration components.
///
/// `angles` rotation steps span 0..180° (the response is π-periodic).
pub fn rotd_sd(
    acc_1: &[f64],
    acc_2: &[f64],
    dt: f64,
    period: f64,
    damping: f64,
    angles: usize,
    method: ResponseMethod,
) -> Result<RotD, DspError> {
    if acc_1.len() != acc_2.len() {
        return Err(DspError::InvalidArgument(format!(
            "component length mismatch: {} vs {}",
            acc_1.len(),
            acc_2.len()
        )));
    }
    if angles < 2 {
        return Err(DspError::InvalidArgument("need at least 2 angles".into()));
    }

    let mut peaks = Vec::with_capacity(angles);
    let mut rotated = vec![0.0; acc_1.len()];
    for k in 0..angles {
        let theta = std::f64::consts::PI * k as f64 / angles as f64;
        let (s, c) = theta.sin_cos();
        for (i, r) in rotated.iter_mut().enumerate() {
            *r = c * acc_1[i] + s * acc_2[i];
        }
        let p = sdof_peaks(&rotated, dt, period, damping, method)?;
        peaks.push(p.sd);
    }
    peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(RotD {
        period,
        rotd50: median_sorted(&peaks),
        rotd100: *peaks.last().unwrap(),
        rotd00: peaks[0],
    })
}

/// Computes the RotD set over a period grid.
#[allow(clippy::too_many_arguments)]
pub fn rotd_spectrum(
    acc_1: &[f64],
    acc_2: &[f64],
    dt: f64,
    periods: &[f64],
    damping: f64,
    angles: usize,
    method: ResponseMethod,
) -> Result<Vec<RotD>, DspError> {
    periods
        .iter()
        .map(|&t| rotd_sd(acc_1, acc_2, dt, t, damping, angles, method))
        .collect()
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, dt: f64, n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 * dt + phase).sin())
            .collect()
    }

    #[test]
    fn ordering_invariants() {
        let dt = 0.01;
        let n = 2000;
        let a1 = tone(1.0, dt, n, 0.0);
        let a2 = tone(1.3, dt, n, 0.7);
        let r = rotd_sd(&a1, &a2, dt, 0.8, 0.05, 10, ResponseMethod::NigamJennings).unwrap();
        assert!(r.rotd00 <= r.rotd50 && r.rotd50 <= r.rotd100);
        assert!(r.rotd100 > 0.0);
    }

    #[test]
    fn isotropic_motion_has_flat_rotd() {
        // Equal-amplitude quadrature components: the rotated trace has the
        // same amplitude at every azimuth, so RotD00 == RotD100.
        let dt = 0.01;
        let n = 6000;
        let f0 = 1.25; // oscillator resonance
        let a1 = tone(f0, dt, n, 0.0);
        let a2 = tone(f0, dt, n, PI / 2.0);
        let r = rotd_sd(
            &a1,
            &a2,
            dt,
            1.0 / f0,
            0.05,
            12,
            ResponseMethod::NigamJennings,
        )
        .unwrap();
        let spread = (r.rotd100 - r.rotd00) / r.rotd50;
        assert!(spread < 0.05, "spread {spread}");
    }

    #[test]
    fn polarized_motion_has_large_rotd_spread() {
        // All energy on one component: at the orthogonal azimuth the
        // response collapses.
        let dt = 0.01;
        let n = 6000;
        let a1 = tone(1.25, dt, n, 0.0);
        let a2 = vec![0.0; n];
        let r = rotd_sd(&a1, &a2, dt, 0.8, 0.05, 18, ResponseMethod::NigamJennings).unwrap();
        assert!(r.rotd00 < 0.2 * r.rotd100, "{r:?}");
    }

    #[test]
    fn rotd100_at_least_component_response() {
        let dt = 0.01;
        let n = 3000;
        let a1 = tone(0.9, dt, n, 0.3);
        let a2 = tone(1.7, dt, n, 1.1);
        let period = 1.0;
        let r = rotd_sd(
            &a1,
            &a2,
            dt,
            period,
            0.05,
            36,
            ResponseMethod::NigamJennings,
        )
        .unwrap();
        let p1 = sdof_peaks(&a1, dt, period, 0.05, ResponseMethod::NigamJennings).unwrap();
        // Angle 0 is included in the sweep, so RotD100 >= component-1 SD.
        assert!(r.rotd100 >= p1.sd * (1.0 - 1e-9));
    }

    #[test]
    fn spectrum_over_periods() {
        let dt = 0.01;
        let n = 1500;
        let a1 = tone(1.0, dt, n, 0.0);
        let a2 = tone(2.0, dt, n, 0.5);
        let periods = [0.3, 0.5, 1.0, 2.0];
        let rs = rotd_spectrum(
            &a1,
            &a2,
            dt,
            &periods,
            0.05,
            8,
            ResponseMethod::NigamJennings,
        )
        .unwrap();
        assert_eq!(rs.len(), 4);
        for (r, &t) in rs.iter().zip(periods.iter()) {
            assert_eq!(r.period, t);
            assert!(r.rotd50 > 0.0);
        }
    }

    #[test]
    fn validation() {
        let a = vec![1.0; 10];
        let b = vec![1.0; 9];
        assert!(rotd_sd(&a, &b, 0.01, 1.0, 0.05, 8, ResponseMethod::NigamJennings).is_err());
        let b = vec![1.0; 10];
        assert!(rotd_sd(&a, &b, 0.01, 1.0, 0.05, 1, ResponseMethod::NigamJennings).is_err());
    }

    #[test]
    fn median_helper() {
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
