//! Peak values and ground-motion intensity measures.
//!
//! Process #4/#13 archive the "max values" of each corrected component; the
//! GEM products additionally consume standard intensity measures. All of the
//! usual strong-motion scalars are computed here.

use crate::error::DspError;
use crate::integrate::{acc_to_vel_disp, cumtrapz};

/// Peak values of one processed component.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeakValues {
    /// Peak ground acceleration (absolute), input units.
    pub pga: f64,
    /// Time (s) at which PGA occurs.
    pub pga_time: f64,
    /// Peak ground velocity (absolute).
    pub pgv: f64,
    /// Time (s) of PGV.
    pub pgv_time: f64,
    /// Peak ground displacement (absolute).
    pub pgd: f64,
    /// Time (s) of PGD.
    pub pgd_time: f64,
}

/// Extended intensity measures used by GEM-style products.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IntensityMeasures {
    /// Arias intensity `Ia = π/(2g) ∫ a(t)² dt` (units depend on input; with
    /// acceleration in cm/s², this uses g = 980.665 cm/s²).
    pub arias: f64,
    /// Significant duration: time between 5% and 75% of the Arias build-up.
    pub duration_575: f64,
    /// Significant duration: time between 5% and 95% of the Arias build-up.
    pub duration_595: f64,
    /// Cumulative absolute velocity `∫ |a(t)| dt`.
    pub cav: f64,
    /// Root-mean-square acceleration over the whole record.
    pub arms: f64,
}

/// Standard gravity in cm/s² (records are in cm/s², "gal" convention).
pub const GRAVITY_CM_S2: f64 = 980.665;

/// Finds the absolute peak and its index; `(0.0, 0)` for empty input.
pub fn abs_peak(x: &[f64]) -> (f64, usize) {
    let mut best = 0.0f64;
    let mut idx = 0usize;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best {
            best = a;
            idx = i;
        }
    }
    (best, idx)
}

/// Computes PGA/PGV/PGD from an acceleration trace by integration.
pub fn peak_values(acc: &[f64], dt: f64) -> Result<PeakValues, DspError> {
    if acc.is_empty() {
        return Err(DspError::TooShort { needed: 1, got: 0 });
    }
    let (vel, disp) = acc_to_vel_disp(acc, dt)?;
    let (pga, ia) = abs_peak(acc);
    let (pgv, iv) = abs_peak(&vel);
    let (pgd, id) = abs_peak(&disp);
    Ok(PeakValues {
        pga,
        pga_time: ia as f64 * dt,
        pgv,
        pgv_time: iv as f64 * dt,
        pgd,
        pgd_time: id as f64 * dt,
    })
}

/// Computes the extended intensity-measure set.
pub fn intensity_measures(acc: &[f64], dt: f64) -> Result<IntensityMeasures, DspError> {
    if acc.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: acc.len(),
        });
    }
    let sq: Vec<f64> = acc.iter().map(|&a| a * a).collect();
    let cum = cumtrapz(&sq, dt)?;
    let total = *cum.last().unwrap();
    let arias = std::f64::consts::PI / (2.0 * GRAVITY_CM_S2) * total;

    let t_at = |frac: f64| -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let target = frac * total;
        match cum.iter().position(|&c| c >= target) {
            Some(i) => i as f64 * dt,
            None => (cum.len() - 1) as f64 * dt,
        }
    };
    let t05 = t_at(0.05);
    let duration_575 = (t_at(0.75) - t05).max(0.0);
    let duration_595 = (t_at(0.95) - t05).max(0.0);

    let abs: Vec<f64> = acc.iter().map(|a| a.abs()).collect();
    let cav = crate::integrate::trapz(&abs, dt)?;
    let arms = (sq.iter().sum::<f64>() / acc.len() as f64).sqrt();

    Ok(IntensityMeasures {
        arias,
        duration_575,
        duration_595,
        cav,
        arms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_peak_basic() {
        assert_eq!(abs_peak(&[1.0, -5.0, 3.0]), (5.0, 1));
        assert_eq!(abs_peak(&[]), (0.0, 0));
        assert_eq!(abs_peak(&[0.0, 0.0]), (0.0, 0));
    }

    #[test]
    fn peaks_of_constant_acceleration() {
        let dt = 0.01;
        let n = 1001;
        let acc = vec![3.0; n];
        let p = peak_values(&acc, dt).unwrap();
        assert_eq!(p.pga, 3.0);
        assert_eq!(p.pga_time, 0.0);
        // velocity grows linearly: peak at the end = 3 * T
        let t_end = (n - 1) as f64 * dt;
        assert!((p.pgv - 3.0 * t_end).abs() < 1e-9);
        assert!((p.pgv_time - t_end).abs() < 1e-9);
        // displacement ~ 1.5 t^2, peak at the end
        assert!((p.pgd - 1.5 * t_end * t_end).abs() < 1e-3);
    }

    #[test]
    fn pga_time_of_pulse() {
        let dt = 0.005;
        let mut acc = vec![0.0; 400];
        acc[100] = -9.0;
        acc[200] = 4.0;
        let p = peak_values(&acc, dt).unwrap();
        assert_eq!(p.pga, 9.0);
        assert!((p.pga_time - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_acc_errors() {
        assert!(peak_values(&[], 0.01).is_err());
        assert!(intensity_measures(&[1.0], 0.01).is_err());
    }

    #[test]
    fn arias_of_constant_matches_closed_form() {
        // a(t) = A constant: Ia = pi/(2g) * A^2 * T
        let dt = 0.01;
        let n = 2001;
        let a = 10.0;
        let acc = vec![a; n];
        let m = intensity_measures(&acc, dt).unwrap();
        let t_end = (n - 1) as f64 * dt;
        let want = std::f64::consts::PI / (2.0 * GRAVITY_CM_S2) * a * a * t_end;
        assert!((m.arias - want).abs() < 1e-6 * want);
        // CAV of constant = A*T
        assert!((m.cav - a * t_end).abs() < 1e-9);
        // RMS of constant = A
        assert!((m.arms - a).abs() < 1e-12);
    }

    #[test]
    fn durations_ordered_and_bounded() {
        let dt = 0.01;
        let n = 4000;
        // Energy concentrated in the middle third.
        let acc: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                if (0.33..0.67).contains(&t) {
                    (i as f64 * 0.7).sin() * 5.0
                } else {
                    0.01 * (i as f64 * 0.3).sin()
                }
            })
            .collect();
        let m = intensity_measures(&acc, dt).unwrap();
        assert!(m.duration_575 <= m.duration_595);
        assert!(m.duration_595 > 0.0);
        // Energy lives in ~1/3 of the 40 s record.
        assert!(
            m.duration_595 < 0.5 * n as f64 * dt,
            "d595 = {}",
            m.duration_595
        );
    }

    #[test]
    fn zero_record_yields_zero_measures() {
        let m = intensity_measures(&vec![0.0; 100], 0.01).unwrap();
        assert_eq!(m.arias, 0.0);
        assert_eq!(m.cav, 0.0);
        assert_eq!(m.arms, 0.0);
        assert_eq!(m.duration_575, 0.0);
    }
}
