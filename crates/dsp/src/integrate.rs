//! Numerical integration and differentiation of uniformly sampled signals.
//!
//! V1 records store acceleration; velocity and displacement traces are
//! produced by cumulative trapezoidal integration (the convention used by
//! strong-motion Vol.2 processing).

use crate::error::DspError;

/// Cumulative trapezoidal integral. `out[0] = 0`; `out[i]` approximates
/// `∫_0^{t_i} x dt` with sampling interval `dt`.
pub fn cumtrapz(x: &[f64], dt: f64) -> Result<Vec<f64>, DspError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(DspError::InvalidSampling(dt));
    }
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0.0;
    let half_dt = 0.5 * dt;
    for (i, &v) in x.iter().enumerate() {
        if i == 0 {
            out.push(0.0);
        } else {
            acc += (x[i - 1] + v) * half_dt;
            out.push(acc);
        }
    }
    Ok(out)
}

/// Total trapezoidal integral over the whole record.
pub fn trapz(x: &[f64], dt: f64) -> Result<f64, DspError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(DspError::InvalidSampling(dt));
    }
    if x.len() < 2 {
        return Ok(0.0);
    }
    let interior: f64 = x[1..x.len() - 1].iter().sum();
    Ok(dt * (0.5 * (x[0] + x[x.len() - 1]) + interior))
}

/// Central-difference derivative (forward/backward at the edges).
pub fn differentiate(x: &[f64], dt: f64) -> Result<Vec<f64>, DspError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(DspError::InvalidSampling(dt));
    }
    let n = x.len();
    match n {
        0 => return Ok(Vec::new()),
        1 => return Ok(vec![0.0]),
        _ => {}
    }
    let mut out = Vec::with_capacity(n);
    out.push((x[1] - x[0]) / dt);
    for i in 1..n - 1 {
        out.push((x[i + 1] - x[i - 1]) / (2.0 * dt));
    }
    out.push((x[n - 1] - x[n - 2]) / dt);
    Ok(out)
}

/// Velocity and displacement derived from an acceleration trace by double
/// cumulative trapezoidal integration.
pub fn acc_to_vel_disp(acc: &[f64], dt: f64) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    let vel = cumtrapz(acc, dt)?;
    let disp = cumtrapz(&vel, dt)?;
    Ok((vel, disp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn cumtrapz_of_constant_is_ramp() {
        let x = vec![2.0; 11];
        let y = cumtrapz(&x, 0.5).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - i as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn cumtrapz_of_ramp_is_quadratic() {
        let dt = 0.1;
        let x: Vec<f64> = (0..101).map(|i| i as f64 * dt).collect(); // x(t)=t
        let y = cumtrapz(&x, dt).unwrap();
        for (i, v) in y.iter().enumerate() {
            let t = i as f64 * dt;
            assert!((v - 0.5 * t * t).abs() < 1e-9, "at {i}: {v}");
        }
    }

    #[test]
    fn trapz_sine_over_period_is_zero() {
        let n = 10_001;
        let dt = 2.0 * PI / (n - 1) as f64;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * dt).sin()).collect();
        assert!(trapz(&x, dt).unwrap().abs() < 1e-6);
    }

    #[test]
    fn trapz_short_inputs() {
        assert_eq!(trapz(&[], 0.1).unwrap(), 0.0);
        assert_eq!(trapz(&[5.0], 0.1).unwrap(), 0.0);
        assert!((trapz(&[1.0, 3.0], 0.5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_sine_is_cosine() {
        let dt = 0.001;
        let n = 5000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * dt).sin()).collect();
        let d = differentiate(&x, dt).unwrap();
        for (i, &v) in d.iter().enumerate().take(n - 1).skip(1) {
            let want = (i as f64 * dt).cos();
            assert!((v - want).abs() < 1e-5, "at {i}: {v} vs {want}");
        }
    }

    #[test]
    fn derivative_edge_cases() {
        assert!(differentiate(&[], 0.1).unwrap().is_empty());
        assert_eq!(differentiate(&[7.0], 0.1).unwrap(), vec![0.0]);
        let d = differentiate(&[0.0, 1.0], 0.5).unwrap();
        assert_eq!(d, vec![2.0, 2.0]);
    }

    #[test]
    fn integrate_then_differentiate_roundtrip() {
        let dt = 0.01;
        let x: Vec<f64> = (0..2000)
            .map(|i| (i as f64 * 0.05).sin() * (i as f64 * 0.003).cos())
            .collect();
        let integral = cumtrapz(&x, dt).unwrap();
        let back = differentiate(&integral, dt).unwrap();
        // interior points round-trip to second-order accuracy
        #[allow(clippy::needless_range_loop)]
        for i in 2..x.len() - 2 {
            assert!((back[i] - x[i]).abs() < 2e-3, "at {i}");
        }
    }

    #[test]
    fn acc_to_vel_disp_constant_acceleration() {
        // a = 2 => v = 2t, d = t^2
        let dt = 0.01;
        let n = 1001;
        let acc = vec![2.0; n];
        let (vel, disp) = acc_to_vel_disp(&acc, dt).unwrap();
        let t_end = (n - 1) as f64 * dt;
        assert!((vel[n - 1] - 2.0 * t_end).abs() < 1e-9);
        assert!((disp[n - 1] - t_end * t_end).abs() < 1e-4);
    }

    #[test]
    fn rejects_bad_dt() {
        assert!(cumtrapz(&[1.0], 0.0).is_err());
        assert!(trapz(&[1.0], -1.0).is_err());
        assert!(differentiate(&[1.0], f64::NAN).is_err());
    }
}
