//! FPL/FSL extraction from the velocity Fourier spectrum (process #10).
//!
//! At long periods a real record's velocity spectrum stops decaying and turns
//! upward, because double-integrated low-frequency noise dominates the
//! signal. The period at which the slope changes sign — the *inflection
//! point* highlighted in Fig. 3 of the paper — marks where the record stops
//! being trustworthy; the definitive band-pass low-side corners (`FPL` =
//! low-pass frequency, `FSL` = low-stop frequency) are placed there.
//!
//! The search mirrors the paper's `CalculateInflectionPoint`: scan the
//! smoothed velocity spectrum in the period domain, *only for periods greater
//! than one second*, and **terminate early** at the first confirmed slope
//! change.

use crate::error::DspError;
use crate::spectrum::{smooth_moving_average, FourierSpectrum};

/// Result of the inflection-point search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FilterCorners {
    /// Low-pass frequency in Hz (signals above pass).
    pub fpl: f64,
    /// Low-stop frequency in Hz (signals below are rejected).
    pub fsl: f64,
    /// Period (s) of the detected inflection point, for diagnostics.
    pub inflection_period: f64,
}

/// Tuning knobs for the inflection search.
#[derive(Debug, Clone, Copy)]
pub struct InflectionConfig {
    /// Periods below this are never inspected (paper: 1 s).
    pub min_period: f64,
    /// Half-width of the moving-average smoothing window (spectral bins).
    pub smooth_half_width: usize,
    /// Number of consecutive rising samples required to confirm the turn.
    pub confirm_points: usize,
    /// `fsl = fpl / stop_ratio`; 2 places the stop corner an octave below.
    pub stop_ratio: f64,
    /// Fallback corner frequency (Hz) when no inflection is found.
    pub fallback_fpl: f64,
}

impl Default for InflectionConfig {
    fn default() -> Self {
        InflectionConfig {
            min_period: 1.0,
            smooth_half_width: 4,
            confirm_points: 3,
            stop_ratio: 2.0,
            fallback_fpl: 0.10,
        }
    }
}

/// Finds the FPL/FSL corners from a component's Fourier spectrum.
///
/// Scans the smoothed velocity amplitude spectrum from the `min_period`
/// boundary toward longer periods (i.e. descending frequency) and stops at
/// the first point where the amplitude has risen for `confirm_points`
/// consecutive samples — the early-termination strategy of §V-B. If the
/// spectrum never turns upward (an unusually clean record), the configured
/// fallback corner is used.
pub fn find_filter_corners(
    spectrum: &FourierSpectrum,
    config: &InflectionConfig,
) -> Result<FilterCorners, DspError> {
    if spectrum.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: spectrum.len(),
        });
    }
    if config.min_period <= 0.0 || config.stop_ratio <= 1.0 {
        return Err(DspError::InvalidArgument(format!(
            "min_period {} must be > 0 and stop_ratio {} > 1",
            config.min_period, config.stop_ratio
        )));
    }

    let smoothed = smooth_moving_average(&spectrum.velocity, config.smooth_half_width);

    // Frequencies ascend; periods > min_period correspond to bins with
    // 0 < f < 1/min_period. Scan from the highest such frequency downward
    // (period ascending past 1 s), skipping DC.
    let f_max = 1.0 / config.min_period;
    let mut start = None;
    for (k, &f) in spectrum.frequency_hz.iter().enumerate().skip(1) {
        if f < f_max {
            start = Some(k);
        }
    }
    // `start` is the last bin below f_max; scanning downward in k means
    // ascending period. Find the largest bin index below f_max:
    let Some(hi) = start else {
        // Record too short/low-resolution to have any bin beyond 1 s period.
        return Ok(fallback(config));
    };

    let confirm = config.confirm_points.max(1);
    let mut rising = 0usize;
    let mut candidate: Option<usize> = None;

    // Walk k = hi, hi-1, ..., 1 (period increasing). Amplitude "rising with
    // period" means smoothed[k-1] > smoothed[k].
    for k in (1..=hi).rev() {
        if smoothed[k - 1] > smoothed[k] {
            if rising == 0 {
                candidate = Some(k);
            }
            rising += 1;
            if rising >= confirm {
                // Early termination: confirmed inflection.
                let idx = candidate.unwrap();
                let f_inf = spectrum.frequency_hz[idx];
                return Ok(FilterCorners {
                    fpl: f_inf,
                    fsl: f_inf / config.stop_ratio,
                    inflection_period: 1.0 / f_inf,
                });
            }
        } else {
            rising = 0;
            candidate = None;
        }
    }

    Ok(fallback(config))
}

fn fallback(config: &InflectionConfig) -> FilterCorners {
    FilterCorners {
        fpl: config.fallback_fpl,
        fsl: config.fallback_fpl / config.stop_ratio,
        inflection_period: 1.0 / config.fallback_fpl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::fourier_spectrum;
    use std::f64::consts::PI;

    /// Builds a synthetic spectrum directly: velocity amplitude as a function
    /// of frequency on a uniform grid.
    fn synthetic_spectrum(df: f64, n: usize, vel: impl Fn(f64) -> f64) -> FourierSpectrum {
        let frequency_hz: Vec<f64> = (0..n).map(|k| k as f64 * df).collect();
        let velocity: Vec<f64> = frequency_hz.iter().map(|&f| vel(f)).collect();
        let acceleration = velocity
            .iter()
            .zip(&frequency_hz)
            .map(|(&v, &f)| v * 2.0 * PI * f)
            .collect();
        let displacement = velocity
            .iter()
            .zip(&frequency_hz)
            .map(|(&v, &f)| if f > 0.0 { v / (2.0 * PI * f) } else { 0.0 })
            .collect();
        FourierSpectrum {
            frequency_hz,
            acceleration,
            velocity,
            displacement,
        }
    }

    #[test]
    fn detects_noise_turnup() {
        // Velocity spectrum: signal hump at ~1 Hz + 1/f^2 noise rising at low f.
        // Noise dominates below ~0.3 Hz, so the inflection is near there.
        let spec = synthetic_spectrum(0.01, 3000, |f| {
            if f == 0.0 {
                return 0.0;
            }
            let signal = (-((f - 1.0) / 0.8).powi(2)).exp();
            let noise = 0.002 / (f * f);
            signal + noise
        });
        let corners = find_filter_corners(&spec, &InflectionConfig::default()).unwrap();
        assert!(
            corners.fpl > 0.05 && corners.fpl < 0.6,
            "fpl = {}",
            corners.fpl
        );
        assert!((corners.fsl - corners.fpl / 2.0).abs() < 1e-12);
        assert!(corners.inflection_period > 1.0);
    }

    #[test]
    fn clean_spectrum_falls_back() {
        // Monotonically increasing with frequency => never rises with period.
        let spec = synthetic_spectrum(0.01, 500, |f| f);
        let cfg = InflectionConfig::default();
        let corners = find_filter_corners(&spec, &cfg).unwrap();
        assert_eq!(corners.fpl, cfg.fallback_fpl);
        assert_eq!(corners.fsl, cfg.fallback_fpl / cfg.stop_ratio);
    }

    #[test]
    fn never_reports_corner_above_one_hz() {
        // Rising bump just above 1 Hz period boundary (f in 1..2 Hz) must be
        // ignored: the search only looks at periods > 1 s (f < 1 Hz).
        let spec = synthetic_spectrum(
            0.01,
            1000,
            |f| {
                if f > 1.2 && f < 1.8 {
                    10.0
                } else {
                    1.0 + f
                }
            },
        );
        let cfg = InflectionConfig::default();
        let corners = find_filter_corners(&spec, &cfg).unwrap();
        assert!(corners.fpl <= 1.0 / cfg.min_period + 1e-9);
    }

    #[test]
    fn too_short_spectrum_errors() {
        let spec = synthetic_spectrum(0.5, 3, |f| f);
        assert!(find_filter_corners(&spec, &InflectionConfig::default()).is_err());
    }

    #[test]
    fn invalid_config_errors() {
        let spec = synthetic_spectrum(0.01, 100, |f| f);
        let cfg = InflectionConfig {
            min_period: 0.0,
            ..Default::default()
        };
        assert!(find_filter_corners(&spec, &cfg).is_err());
        let cfg2 = InflectionConfig {
            stop_ratio: 1.0,
            ..Default::default()
        };
        assert!(find_filter_corners(&spec, &cfg2).is_err());
    }

    #[test]
    fn low_resolution_spectrum_falls_back() {
        // df = 2 Hz: no bins below 1 Hz at all.
        let spec = synthetic_spectrum(2.0, 50, |f| 1.0 / (f + 1.0));
        let cfg = InflectionConfig::default();
        let corners = find_filter_corners(&spec, &cfg).unwrap();
        assert_eq!(corners.fpl, cfg.fallback_fpl);
    }

    #[test]
    fn works_on_real_fft_spectrum() {
        // Build a time-domain record: band-limited signal + low-frequency drift
        // noise, run the real spectrum path end to end.
        let dt = 0.01;
        let n = 16384;
        let acc: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                (2.0 * PI * 2.0 * t).sin() * (-((t - 60.0) / 30.0).powi(2)).exp()
                    + 0.05 * (2.0 * PI * 0.04 * t).sin()
            })
            .collect();
        let spec = fourier_spectrum(&acc, dt).unwrap();
        let corners = find_filter_corners(&spec, &InflectionConfig::default()).unwrap();
        assert!(corners.fpl > 0.0 && corners.fpl <= 1.0);
        assert!(corners.fsl < corners.fpl);
    }

    #[test]
    fn confirm_points_guard_against_single_blip() {
        // One isolated rising sample (narrow spike) should not trigger with
        // confirm_points = 3; search should continue and fall back.
        let spec = synthetic_spectrum(0.01, 400, |f| {
            if (f - 0.5).abs() < 0.005 {
                5.0
            } else {
                1.0 + f
            }
        });
        let cfg = InflectionConfig {
            smooth_half_width: 0, // keep the blip sharp
            confirm_points: 3,
            ..Default::default()
        };
        let corners = find_filter_corners(&spec, &cfg).unwrap();
        assert_eq!(corners.fpl, cfg.fallback_fpl, "blip must not confirm");
    }
}
