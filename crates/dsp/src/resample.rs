//! Resampling of uniformly sampled records.
//!
//! The experimental dataset mixes instruments with different sampling rates
//! (paper §VIII: "a variety of equipment types and sampling rates"); the
//! generator and tests use these helpers to produce and normalize them.

use crate::error::DspError;

/// Linear interpolation of `x` (sampled at `dt_in`) onto a grid with
/// interval `dt_out`, covering the same time span.
pub fn resample_linear(x: &[f64], dt_in: f64, dt_out: f64) -> Result<Vec<f64>, DspError> {
    if !(dt_in.is_finite() && dt_in > 0.0) {
        return Err(DspError::InvalidSampling(dt_in));
    }
    if !(dt_out.is_finite() && dt_out > 0.0) {
        return Err(DspError::InvalidSampling(dt_out));
    }
    if x.len() < 2 {
        return Ok(x.to_vec());
    }
    let span = (x.len() - 1) as f64 * dt_in;
    let n_out = (span / dt_out).floor() as usize + 1;
    let mut out = Vec::with_capacity(n_out);
    for i in 0..n_out {
        let t = i as f64 * dt_out;
        let pos = t / dt_in;
        let idx = pos.floor() as usize;
        if idx + 1 >= x.len() {
            out.push(x[x.len() - 1]);
        } else {
            let frac = pos - idx as f64;
            out.push(x[idx] * (1.0 - frac) + x[idx + 1] * frac);
        }
    }
    Ok(out)
}

/// Integer decimation: keeps every `factor`-th sample. A proper pipeline
/// low-pass-filters first; callers are expected to have band-limited input.
pub fn decimate(x: &[f64], factor: usize) -> Result<Vec<f64>, DspError> {
    if factor == 0 {
        return Err(DspError::InvalidArgument("decimation factor 0".into()));
    }
    Ok(x.iter().step_by(factor).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resample() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = resample_linear(&x, 0.1, 0.1).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn upsample_ramp_is_exact() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = resample_linear(&x, 0.1, 0.05).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - i as f64 * 0.5).abs() < 1e-12, "at {i}: {v}");
        }
    }

    #[test]
    fn downsample_halves_count() {
        let x: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let y = resample_linear(&x, 0.01, 0.02).unwrap();
        assert_eq!(y.len(), 51);
        assert!((y[50] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn short_inputs_pass_through() {
        assert_eq!(resample_linear(&[], 0.1, 0.2).unwrap(), Vec::<f64>::new());
        assert_eq!(resample_linear(&[7.0], 0.1, 0.2).unwrap(), vec![7.0]);
    }

    #[test]
    fn bad_dt_rejected() {
        assert!(resample_linear(&[1.0, 2.0], 0.0, 0.1).is_err());
        assert!(resample_linear(&[1.0, 2.0], 0.1, -0.1).is_err());
    }

    #[test]
    fn decimate_basic() {
        let x = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(decimate(&x, 2).unwrap(), vec![0.0, 2.0, 4.0]);
        assert_eq!(decimate(&x, 1).unwrap(), x);
        assert!(decimate(&x, 0).is_err());
    }
}
