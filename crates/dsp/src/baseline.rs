//! Baseline correction of acceleration records.
//!
//! Raw accelerograms carry instrument offsets and low-frequency drift; before
//! filtering and integration, the processing pipeline removes a baseline.
//! This module implements the standard options: mean removal, least-squares
//! linear detrend, and low-order polynomial detrend (fit with orthogonal
//! Legendre-like polynomials on `[-1, 1]` so the normal equations stay
//! well-conditioned even for long records).

use crate::error::DspError;

/// Baseline model to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Subtract the arithmetic mean.
    Mean,
    /// Subtract the least-squares straight line.
    Linear,
    /// Subtract a least-squares polynomial of the given degree (0..=10).
    Polynomial(usize),
}

/// Removes the chosen baseline in place.
pub fn remove_baseline(data: &mut [f64], model: Baseline) -> Result<(), DspError> {
    match model {
        Baseline::Mean => {
            remove_mean(data);
            Ok(())
        }
        Baseline::Linear => remove_polynomial(data, 1),
        Baseline::Polynomial(deg) => remove_polynomial(data, deg),
    }
}

/// Subtracts the mean in place. No-op on empty input.
pub fn remove_mean(data: &mut [f64]) {
    if data.is_empty() {
        return;
    }
    let mean = data.iter().sum::<f64>() / data.len() as f64;
    for x in data.iter_mut() {
        *x -= mean;
    }
}

/// Fits and subtracts a degree-`deg` polynomial (least squares) in place.
///
/// Uses a Gram–Schmidt-orthogonalized polynomial basis evaluated on the
/// normalized abscissa `t in [-1, 1]`, which keeps the fit numerically stable
/// for degrees up to 10 and record lengths in the tens of thousands.
pub fn remove_polynomial(data: &mut [f64], deg: usize) -> Result<(), DspError> {
    if deg > 10 {
        return Err(DspError::InvalidArgument(format!(
            "polynomial degree {deg} > 10"
        )));
    }
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if n <= deg {
        return Err(DspError::TooShort {
            needed: deg + 1,
            got: n,
        });
    }

    // Normalized abscissa.
    let ts: Vec<f64> = if n == 1 {
        vec![0.0]
    } else {
        (0..n)
            .map(|i| 2.0 * i as f64 / (n - 1) as f64 - 1.0)
            .collect()
    };

    // Build orthogonal basis phi_0..phi_deg over the sample points via
    // modified Gram-Schmidt on the monomials, then project and subtract.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(deg + 1);
    for d in 0..=deg {
        let mut v: Vec<f64> = ts.iter().map(|t| t.powi(d as i32)).collect();
        for b in &basis {
            let dot = dot(&v, b);
            for (x, y) in v.iter_mut().zip(b.iter()) {
                *x -= dot * y;
            }
        }
        let norm = dot(&v, &v).sqrt();
        if norm < 1e-14 {
            // Degenerate (e.g. n too small relative to degree) — skip.
            continue;
        }
        for x in v.iter_mut() {
            *x /= norm;
        }
        basis.push(v);
    }

    for b in &basis {
        let coef = dot(data, b);
        for (x, y) in data.iter_mut().zip(b.iter()) {
            *x -= coef * y;
        }
    }
    Ok(())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs(x: &[f64]) -> f64 {
        x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    #[test]
    fn mean_removal_zeroes_mean() {
        let mut x: Vec<f64> = (0..100).map(|i| i as f64 + 5.0).collect();
        remove_mean(&mut x);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 1e-10);
    }

    #[test]
    fn mean_removal_empty_ok() {
        let mut x: Vec<f64> = vec![];
        remove_mean(&mut x);
        assert!(x.is_empty());
    }

    #[test]
    fn linear_detrend_kills_ramp() {
        let mut x: Vec<f64> = (0..500).map(|i| 3.0 + 0.25 * i as f64).collect();
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        assert!(max_abs(&x) < 1e-8, "residual {}", max_abs(&x));
    }

    #[test]
    fn linear_detrend_preserves_oscillation() {
        let n = 1000;
        let osc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut x: Vec<f64> = osc
            .iter()
            .enumerate()
            .map(|(i, &o)| o + 2.0 + 0.01 * i as f64)
            .collect();
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        // The oscillation survives nearly intact (its projection on 1,t is tiny).
        let rms_diff = (x
            .iter()
            .zip(&osc)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        assert!(rms_diff < 0.05, "rms diff {rms_diff}");
    }

    #[test]
    fn cubic_detrend_kills_cubic() {
        let n = 300;
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                1.0 - 2.0 * t + 3.0 * t * t - 4.0 * t * t * t
            })
            .collect();
        remove_baseline(&mut x, Baseline::Polynomial(3)).unwrap();
        assert!(max_abs(&x) < 1e-8);
    }

    #[test]
    fn degree_zero_equals_mean_removal() {
        let mut a: Vec<f64> = (0..50).map(|i| (i as f64).sin() + 7.0).collect();
        let mut b = a.clone();
        remove_mean(&mut a);
        remove_baseline(&mut b, Baseline::Polynomial(0)).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn too_short_errors() {
        let mut x = vec![1.0, 2.0];
        assert!(matches!(
            remove_baseline(&mut x, Baseline::Polynomial(5)),
            Err(DspError::TooShort { .. })
        ));
    }

    #[test]
    fn excessive_degree_errors() {
        let mut x = vec![0.0; 100];
        assert!(remove_polynomial(&mut x, 11).is_err());
    }

    #[test]
    fn empty_input_ok() {
        let mut x: Vec<f64> = vec![];
        remove_baseline(&mut x, Baseline::Linear).unwrap();
    }

    #[test]
    fn idempotent() {
        let mut x: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.1).sin() + 0.002 * i as f64)
            .collect();
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        let once = x.clone();
        remove_baseline(&mut x, Baseline::Linear).unwrap();
        for (a, b) in once.iter().zip(x.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn high_degree_stable_on_long_record() {
        let n = 20_000;
        let mut x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (t * 40.0).sin() + t.powi(7) * 5.0
            })
            .collect();
        remove_baseline(&mut x, Baseline::Polynomial(8)).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        // Polynomial part removed: remaining energy is close to the sine alone.
        let rms = (x.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt();
        assert!((rms - (0.5f64).sqrt()).abs() < 0.05, "rms {rms}");
    }
}
