//! Fourier amplitude spectra of strong-motion records (the `F` files).
//!
//! Process #7 of the pipeline computes, for each corrected component, the
//! Fourier amplitude spectra of acceleration, velocity, and displacement.
//! Velocity and displacement spectra are obtained from the acceleration
//! spectrum by division by `iω` and `(iω)²` in the frequency domain, the
//! standard relationship for time-integrated signals.

use crate::backend::DspBackend;
use crate::error::DspError;
use crate::fft::{bin_frequency, rfft_with};

/// One-sided Fourier amplitude spectrum sampled at `n/2 + 1` frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct FourierSpectrum {
    /// Frequencies in Hz, ascending, starting at 0.
    pub frequency_hz: Vec<f64>,
    /// Acceleration amplitude spectrum (input units · s).
    pub acceleration: Vec<f64>,
    /// Velocity amplitude spectrum.
    pub velocity: Vec<f64>,
    /// Displacement amplitude spectrum.
    pub displacement: Vec<f64>,
}

impl FourierSpectrum {
    /// Number of spectral points.
    pub fn len(&self) -> usize {
        self.frequency_hz.len()
    }

    /// True if the spectrum has no points.
    pub fn is_empty(&self) -> bool {
        self.frequency_hz.is_empty()
    }

    /// Period axis (s) for points with nonzero frequency. The DC point maps
    /// to infinity and is skipped by period-domain consumers.
    pub fn periods(&self) -> Vec<f64> {
        self.frequency_hz
            .iter()
            .map(|&f| if f > 0.0 { 1.0 / f } else { f64::INFINITY })
            .collect()
    }
}

/// Computes the one-sided Fourier amplitude spectra of an acceleration trace
/// sampled at `dt` seconds.
///
/// Amplitudes are scaled by `dt` so they approximate the continuous Fourier
/// transform magnitude. Velocity/displacement follow by `1/ω`, `1/ω²`; their
/// DC values are set to 0 (the division is singular there).
pub fn fourier_spectrum(acc: &[f64], dt: f64) -> Result<FourierSpectrum, DspError> {
    fourier_spectrum_with(acc, dt, DspBackend::Auto)
}

/// As [`fourier_spectrum`] with an explicit [`DspBackend`]. Backends are
/// bitwise-equal.
pub fn fourier_spectrum_with(
    acc: &[f64],
    dt: f64,
    backend: DspBackend,
) -> Result<FourierSpectrum, DspError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(DspError::InvalidSampling(dt));
    }
    if acc.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: acc.len(),
        });
    }
    let n = acc.len();
    let spec = rfft_with(acc, backend);
    let half = n / 2 + 1;

    let mut frequency_hz = Vec::with_capacity(half);
    let mut acceleration = Vec::with_capacity(half);
    let mut velocity = Vec::with_capacity(half);
    let mut displacement = Vec::with_capacity(half);

    #[allow(clippy::needless_range_loop)] // k is a DFT bin index, not just a position
    for k in 0..half {
        let f = bin_frequency(k, n, dt);
        let amp = spec[k].abs() * dt;
        frequency_hz.push(f);
        acceleration.push(amp);
        if k == 0 {
            velocity.push(0.0);
            displacement.push(0.0);
        } else {
            let w = 2.0 * std::f64::consts::PI * f;
            velocity.push(amp / w);
            displacement.push(amp / (w * w));
        }
    }

    Ok(FourierSpectrum {
        frequency_hz,
        acceleration,
        velocity,
        displacement,
    })
}

/// Centered moving-average smoothing with a window of `2*half_width + 1`
/// points (shrinking near the edges). `half_width == 0` returns a copy.
pub fn smooth_moving_average(x: &[f64], half_width: usize) -> Vec<f64> {
    if half_width == 0 || x.len() < 3 {
        return x.to_vec();
    }
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) smoothing.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().unwrap() + v);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half_width);
        let hi = (i + half_width).min(n - 1);
        let count = (hi - lo + 1) as f64;
        out.push((prefix[hi + 1] - prefix[lo]) / count);
    }
    out
}

/// Resamples a spectrum onto `count` log-spaced frequencies between `f_lo`
/// and `f_hi` (Hz) by linear interpolation. Frequencies outside the source
/// range clamp to the edge values.
pub fn log_resample(
    freq: &[f64],
    amp: &[f64],
    f_lo: f64,
    f_hi: f64,
    count: usize,
) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    if freq.len() != amp.len() {
        return Err(DspError::InvalidArgument(format!(
            "freq/amp length mismatch: {} vs {}",
            freq.len(),
            amp.len()
        )));
    }
    if freq.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: freq.len(),
        });
    }
    if !(f_lo > 0.0 && f_hi > f_lo && f_lo.is_finite() && f_hi.is_finite()) {
        return Err(DspError::InvalidArgument(format!(
            "bad log-resample range [{f_lo}, {f_hi}]"
        )));
    }
    if count < 2 {
        return Err(DspError::InvalidArgument("count must be >= 2".into()));
    }
    let log_lo = f_lo.ln();
    let log_step = (f_hi.ln() - log_lo) / (count - 1) as f64;
    let mut out_f = Vec::with_capacity(count);
    let mut out_a = Vec::with_capacity(count);
    for i in 0..count {
        let f = (log_lo + log_step * i as f64).exp();
        out_f.push(f);
        out_a.push(interp_clamped(freq, amp, f));
    }
    Ok((out_f, out_a))
}

/// Linear interpolation on an ascending grid, clamping outside the range.
fn interp_clamped(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // binary search for the bracketing interval
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    let t = (x - x0) / (x1 - x0);
    y0 + t * (y1 - y0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tone_peaks_at_its_frequency() {
        let dt = 0.01;
        let n = 4096;
        let f0 = 2.0;
        let acc: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f0 * i as f64 * dt).sin())
            .collect();
        let spec = fourier_spectrum(&acc, dt).unwrap();
        let peak_idx = spec
            .acceleration
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((spec.frequency_hz[peak_idx] - f0).abs() < 0.05);
    }

    #[test]
    fn velocity_spectrum_is_acc_over_omega() {
        let dt = 0.005;
        let n = 1024;
        let acc: Vec<f64> = (0..n).map(|i| ((i % 37) as f64 - 18.0) * 0.1).collect();
        let spec = fourier_spectrum(&acc, dt).unwrap();
        #[allow(clippy::needless_range_loop)]
        for k in 1..spec.len() {
            let w = 2.0 * PI * spec.frequency_hz[k];
            assert!((spec.velocity[k] - spec.acceleration[k] / w).abs() < 1e-12);
            assert!((spec.displacement[k] - spec.acceleration[k] / (w * w)).abs() < 1e-12);
        }
        assert_eq!(spec.velocity[0], 0.0);
        assert_eq!(spec.displacement[0], 0.0);
    }

    #[test]
    fn spectrum_length_is_half_plus_one() {
        let dt = 0.01;
        for n in [16usize, 17, 100, 1001] {
            let acc = vec![1.0; n];
            let spec = fourier_spectrum(&acc, dt).unwrap();
            assert_eq!(spec.len(), n / 2 + 1);
            assert!(!spec.is_empty());
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fourier_spectrum(&[1.0], 0.01).is_err());
        assert!(fourier_spectrum(&[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn periods_are_reciprocal_frequencies() {
        let spec = fourier_spectrum(&vec![1.0; 64], 0.02).unwrap();
        let periods = spec.periods();
        assert!(periods[0].is_infinite());
        for (p, f) in periods.iter().zip(&spec.frequency_hz).skip(1) {
            assert!((p - 1.0 / f).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_preserves_constant() {
        let x = vec![3.0; 50];
        let y = smooth_moving_average(&x, 4);
        assert!(y.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn smoothing_reduces_variance() {
        let x: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = smooth_moving_average(&x, 3);
        let var = |v: &[f64]| v.iter().map(|a| a * a).sum::<f64>() / v.len() as f64;
        assert!(var(&y) < 0.2 * var(&x));
    }

    #[test]
    fn smoothing_zero_width_is_identity() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(smooth_moving_average(&x, 0), x);
    }

    #[test]
    fn smoothing_matches_naive() {
        let x: Vec<f64> = (0..30).map(|i| ((i * 7) % 11) as f64).collect();
        let hw = 2;
        let fast = smooth_moving_average(&x, hw);
        #[allow(clippy::needless_range_loop)]
        for i in 0..x.len() {
            let lo = i.saturating_sub(hw);
            let hi = (i + hw).min(x.len() - 1);
            let naive: f64 = x[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64;
            assert!((fast[i] - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn log_resample_endpoints_and_monotonic() {
        let freq: Vec<f64> = (1..100).map(|i| i as f64 * 0.1).collect();
        let amp: Vec<f64> = freq.iter().map(|f| 1.0 / f).collect();
        let (f, a) = log_resample(&freq, &amp, 0.2, 8.0, 50).unwrap();
        assert_eq!(f.len(), 50);
        assert!((f[0] - 0.2).abs() < 1e-9);
        assert!((f[49] - 8.0).abs() < 1e-9);
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
        // interpolated values close to 1/f (linear interpolation of a convex
        // function overshoots slightly on a 0.1 Hz grid)
        for (ff, aa) in f.iter().zip(a.iter()) {
            assert!((aa - 1.0 / ff).abs() / (1.0 / ff) < 0.05, "at {ff}: {aa}");
        }
    }

    #[test]
    fn log_resample_validates() {
        let f = vec![1.0, 2.0];
        let a = vec![1.0, 2.0];
        assert!(log_resample(&f, &a, 0.0, 2.0, 10).is_err());
        assert!(log_resample(&f, &a, 2.0, 1.0, 10).is_err());
        assert!(log_resample(&f, &a, 1.0, 2.0, 1).is_err());
        assert!(log_resample(&f, &[1.0], 1.0, 2.0, 10).is_err());
    }

    #[test]
    fn parseval_like_energy_sanity() {
        // Spectrum of a unit impulse is flat at dt.
        let dt = 0.02;
        let mut acc = vec![0.0; 128];
        acc[0] = 1.0;
        let spec = fourier_spectrum(&acc, dt).unwrap();
        for v in &spec.acceleration {
            assert!((v - dt).abs() < 1e-12);
        }
    }
}
