//! Window functions used in FIR filter design and spectral smoothing.
//!
//! The pipeline's "Hamming band-pass filter" (paper §II) is a windowed-sinc
//! FIR filter whose ideal band-pass response is tapered with the Hamming
//! window; the windows here feed [`crate::fir`].

/// The supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hamming window `0.54 - 0.46 cos(2πn/(N-1))` — the paper's default.
    Hamming,
    /// Hann window `0.5 - 0.5 cos(2πn/(N-1))`.
    Hann,
    /// Blackman window (three-term).
    Blackman,
    /// Kaiser window with shape parameter β — the adjustable
    /// sidelobe/width trade-off used by modern filter design (β ≈ 8.6
    /// matches Blackman; β ≈ 5 matches Hamming).
    Kaiser(f64),
}

/// Modified Bessel function of the first kind, order zero — the kernel of
/// the Kaiser window. Power-series evaluation, accurate to ~1e-15 for the
/// argument range windows use (|x| ≲ 30).
pub fn bessel_i0(x: f64) -> f64 {
    let half_x = x / 2.0;
    let mut term = 1.0f64;
    let mut sum = 1.0f64;
    for k in 1..64 {
        term *= (half_x / k as f64) * (half_x / k as f64);
        sum += term;
        if term < sum * 1e-17 {
            break;
        }
    }
    sum
}

impl WindowKind {
    /// Evaluates the window at sample `n` of an `len`-point window.
    ///
    /// Out-of-range `n` yields 0. Single-point windows are identically 1.
    pub fn value(self, n: usize, len: usize) -> f64 {
        if len == 0 || n >= len {
            return 0.0;
        }
        if len == 1 {
            return 1.0;
        }
        let x = 2.0 * std::f64::consts::PI * n as f64 / (len - 1) as f64;
        match self {
            WindowKind::Rectangular => 1.0,
            WindowKind::Hamming => 0.54 - 0.46 * x.cos(),
            WindowKind::Hann => 0.5 - 0.5 * x.cos(),
            WindowKind::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            WindowKind::Kaiser(beta) => {
                let r = 2.0 * n as f64 / (len - 1) as f64 - 1.0;
                bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Materializes the full window as a vector.
    pub fn samples(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.value(n, len)).collect()
    }

    /// Short name used in metadata files.
    pub fn name(self) -> &'static str {
        match self {
            WindowKind::Rectangular => "rectangular",
            WindowKind::Hamming => "hamming",
            WindowKind::Hann => "hann",
            WindowKind::Blackman => "blackman",
            WindowKind::Kaiser(_) => "kaiser",
        }
    }
}

/// A cosine (Tukey) taper applied to the ends of a record before filtering,
/// standard practice in strong-motion processing to suppress edge ringing.
///
/// `fraction` is the total fraction of the record tapered (half at each end),
/// clamped to `[0, 1]`.
pub fn cosine_taper(data: &mut [f64], fraction: f64) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let taper_len = ((fraction * n as f64) / 2.0).floor() as usize;
    if taper_len == 0 {
        return;
    }
    let taper_len = taper_len.min(n / 2);
    for i in 0..taper_len {
        // Raised-cosine ramp from 0 to 1 over taper_len samples.
        let w = 0.5 * (1.0 - (std::f64::consts::PI * i as f64 / taper_len as f64).cos());
        data[i] *= w;
        data[n - 1 - i] *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_endpoints_and_center() {
        let n = 51;
        let w = WindowKind::Hamming.samples(n);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[n - 1] - 0.08).abs() < 1e-12);
        assert!((w[n / 2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_endpoints_zero() {
        let w = WindowKind::Hann.samples(33);
        assert!(w[0].abs() < 1e-12);
        assert!(w[32].abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackman_endpoints_near_zero() {
        let w = WindowKind::Blackman.samples(21);
        assert!(w[0].abs() < 1e-12);
        assert!((w[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangular_is_ones() {
        assert!(WindowKind::Rectangular
            .samples(10)
            .iter()
            .all(|&x| x == 1.0));
    }

    #[test]
    fn bessel_i0_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(2.0) - 2.2795853023360673).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
        // Even function of x.
        assert_eq!(bessel_i0(3.0), bessel_i0(3.0));
    }

    #[test]
    fn kaiser_window_properties() {
        let beta = 8.6;
        let n = 65;
        let w = WindowKind::Kaiser(beta).samples(n);
        // Peak of 1 at the center.
        assert!((w[n / 2] - 1.0).abs() < 1e-12);
        // Edges at 1/I0(beta).
        let edge = 1.0 / bessel_i0(beta);
        assert!((w[0] - edge).abs() < 1e-12);
        assert!((w[n - 1] - edge).abs() < 1e-12);
        // Monotone rise over the first half.
        for i in 0..n / 2 {
            assert!(w[i] <= w[i + 1] + 1e-15, "at {i}");
        }
        // beta = 0 degenerates to rectangular.
        let rect = WindowKind::Kaiser(0.0).samples(9);
        assert!(rect.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn kaiser_filter_design_works_end_to_end() {
        use crate::fir::{BandPass, FirFilter};
        let filt = FirFilter::band_pass(BandPass::DEFAULT, 0.01, WindowKind::Kaiser(8.6)).unwrap();
        assert!(filt.gain_at(5.0) > 0.9);
        assert!(filt.gain_at(0.01) < 0.05);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hamming,
            WindowKind::Hann,
            WindowKind::Blackman,
            WindowKind::Kaiser(6.0),
        ] {
            let w = kind.samples(64);
            for i in 0..32 {
                assert!(
                    (w[i] - w[63 - i]).abs() < 1e-12,
                    "{} asymmetric at {i}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hamming.samples(0).is_empty());
        assert_eq!(WindowKind::Hamming.samples(1), vec![1.0]);
        assert_eq!(WindowKind::Hamming.value(5, 3), 0.0);
    }

    #[test]
    fn taper_preserves_middle() {
        let mut data = vec![1.0; 100];
        cosine_taper(&mut data, 0.1); // 5 samples at each end
        assert_eq!(data[50], 1.0);
        assert!(data[0].abs() < 1e-12);
        assert!(data[99].abs() < 1e-12);
        assert!(data[1] < 1.0 && data[1] > 0.0);
    }

    #[test]
    fn taper_zero_fraction_is_identity() {
        let mut data = vec![2.0; 10];
        cosine_taper(&mut data, 0.0);
        assert!(data.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn taper_full_fraction_tapers_half_each_side() {
        let mut data = vec![1.0; 10];
        cosine_taper(&mut data, 1.0);
        assert!(data[0].abs() < 1e-12);
        // monotone ramp up across the first half
        assert!(data[1] < data[2] && data[2] < data[3]);
    }

    #[test]
    fn taper_tiny_inputs_are_safe() {
        let mut one = vec![3.0];
        cosine_taper(&mut one, 0.5);
        assert_eq!(one, vec![3.0]);
        let mut empty: Vec<f64> = vec![];
        cosine_taper(&mut empty, 0.5);
    }
}
