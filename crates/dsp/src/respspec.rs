//! Elastic response spectra (process #16 — the pipeline's dominant cost).
//!
//! For every oscillator period `T` and damping ratio `ζ`, the peak response
//! of a single-degree-of-freedom system driven by the ground acceleration is
//! computed: relative displacement `SD`, relative velocity `SV`, and absolute
//! acceleration `SA` (plus the pseudo-quantities `PSV = ω·SD`,
//! `PSA = ω²·SD`).
//!
//! Two solvers are provided:
//!
//! * [`ResponseMethod::Duhamel`] — direct evaluation of the Duhamel
//!   convolution integral, `O(D²)` in the record length per period. This is
//!   the method class behind the paper's stated sequential complexity of
//!   `O(9000 · N · D²)` for process #16, and is kept as the faithful
//!   reproduction of the legacy Fortran kernel.
//! * [`ResponseMethod::NigamJennings`] — the exact piecewise-linear
//!   recurrence (Nigam & Jennings, 1969), `O(D)` per period; used as the
//!   fast alternative and as an ablation of the paper's "advanced
//!   optimization" future work.

use crate::backend::{DspBackend, LANES};
use crate::error::DspError;
use rayon::prelude::*;

/// Solver used for the SDOF time-history integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ResponseMethod {
    /// Direct Duhamel integral, `O(D²)` per period (legacy-faithful).
    Duhamel,
    /// Exact recursive solution for piecewise-linear input, `O(D)` per period.
    NigamJennings,
}

/// Peak SDOF responses for one `(period, damping)` pair.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SdofPeaks {
    /// Peak relative displacement.
    pub sd: f64,
    /// Peak relative velocity.
    pub sv: f64,
    /// Peak absolute acceleration.
    pub sa: f64,
}

/// A full response spectrum over a period grid at one damping ratio.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResponseSpectrum {
    /// Oscillator periods (s), ascending.
    pub periods: Vec<f64>,
    /// Damping ratio (fraction of critical, e.g. 0.05).
    pub damping: f64,
    /// Peak relative displacement per period.
    pub sd: Vec<f64>,
    /// Peak relative velocity per period.
    pub sv: Vec<f64>,
    /// Peak absolute acceleration per period.
    pub sa: Vec<f64>,
}

impl ResponseSpectrum {
    /// Pseudo-velocity spectrum `PSV = ω · SD`.
    pub fn psv(&self) -> Vec<f64> {
        self.periods
            .iter()
            .zip(&self.sd)
            .map(|(&t, &sd)| 2.0 * std::f64::consts::PI / t * sd)
            .collect()
    }

    /// Pseudo-acceleration spectrum `PSA = ω² · SD`.
    pub fn psa(&self) -> Vec<f64> {
        self.periods
            .iter()
            .zip(&self.sd)
            .map(|(&t, &sd)| {
                let w = 2.0 * std::f64::consts::PI / t;
                w * w * sd
            })
            .collect()
    }

    /// Number of spectral ordinates.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// True when the spectrum has no ordinates.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }
}

/// The standard 91-period grid used by classic Vol.3 processing: log-spaced
/// between 0.04 s and 15 s.
pub fn standard_periods() -> Vec<f64> {
    log_spaced_periods(0.04, 15.0, 91)
}

/// `count` log-spaced periods between `t_lo` and `t_hi` seconds.
pub fn log_spaced_periods(t_lo: f64, t_hi: f64, count: usize) -> Vec<f64> {
    assert!(
        t_lo > 0.0 && t_hi > t_lo && count >= 2,
        "bad period grid spec"
    );
    let l0 = t_lo.ln();
    let step = (t_hi.ln() - l0) / (count - 1) as f64;
    (0..count).map(|i| (l0 + step * i as f64).exp()).collect()
}

/// The damping set archived in `R` files: 0%, 2%, 5%, 10%, 20% of critical.
pub const STANDARD_DAMPINGS: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// Computes the peak response of one SDOF oscillator.
///
/// `period` in seconds, `damping` as a fraction of critical in `[0, 0.99]`.
pub fn sdof_peaks(
    acc: &[f64],
    dt: f64,
    period: f64,
    damping: f64,
    method: ResponseMethod,
) -> Result<SdofPeaks, DspError> {
    validate_sdof_args(acc, dt, period, damping)?;
    Ok(match method {
        ResponseMethod::Duhamel => duhamel_peaks(acc, dt, period, damping),
        ResponseMethod::NigamJennings => nigam_jennings_peaks(acc, dt, period, damping),
    })
}

fn validate_sdof_args(acc: &[f64], dt: f64, period: f64, damping: f64) -> Result<(), DspError> {
    if acc.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: acc.len(),
        });
    }
    if !(dt.is_finite() && dt > 0.0) {
        return Err(DspError::InvalidSampling(dt));
    }
    if !(period.is_finite() && period > 0.0) {
        return Err(DspError::InvalidArgument(format!(
            "period {period} must be > 0"
        )));
    }
    if !(0.0..0.99).contains(&damping) {
        return Err(DspError::InvalidArgument(format!(
            "damping {damping} must be in [0, 0.99)"
        )));
    }
    Ok(())
}

/// Per-period SDOF constants shared by both solvers and both backends.
///
/// Computed once per period by [`sdof_consts`] so the scalar and 4-lane
/// kernels see exactly the same values (the transcendentals here are the
/// only `exp`/`sin_cos` calls in the Nigam–Jennings path).
#[derive(Debug, Clone, Copy)]
struct SdofConsts {
    /// Natural circular frequency `ω = 2π/T`.
    w: f64,
    /// Damped frequency `ωd = ω·√(1-ζ²)`.
    wd: f64,
    /// Decay rate `ζω`.
    bw: f64,
    /// `ω²`.
    w2: f64,
    /// Step decay `e^{-ζω·dt}`.
    e: f64,
    /// `sin(ωd·dt)`.
    s: f64,
    /// `cos(ωd·dt)`.
    c: f64,
}

fn sdof_consts(dt: f64, period: f64, damping: f64) -> SdofConsts {
    let w = 2.0 * std::f64::consts::PI / period;
    let wd = w * (1.0 - damping * damping).sqrt();
    let bw = damping * w;
    let w2 = w * w;
    let e = (-bw * dt).exp();
    let (s, c) = (wd * dt).sin_cos();
    SdofConsts {
        w,
        wd,
        bw,
        w2,
        e,
        s,
        c,
    }
}

/// One Nigam–Jennings step: advances `(u, v)` across one sample interval
/// with ground acceleration linear from `a0` to `a1`, returning
/// `(u', v', absolute acceleration)`.
///
/// `#[inline(always)]` and shared by the scalar and 4-lane kernels: both
/// backends execute this exact expression tree per period per step, which is
/// what makes them bitwise-equal.
#[inline(always)]
fn nj_step(k: &SdofConsts, dt: f64, u: f64, v: f64, a0: f64, a1: f64) -> (f64, f64, f64) {
    let gamma = (a1 - a0) / dt;

    // Particular solution u_p = cc + dd·τ for forcing -(a0 + γτ).
    let dd = -gamma / k.w2;
    let cc = (-a0 - 2.0 * k.bw * dd) / k.w2;

    // Homogeneous constants from initial conditions at τ = 0.
    let p = u - cc;
    let q = (v - dd + k.bw * p) / k.wd;

    // Advance to τ = dt.
    let rot = p * k.c + q * k.s;
    let u_next = k.e * rot + cc + dd * dt;
    let v_next = k.e * (-k.bw * rot + k.wd * (q * k.c - p * k.s)) + dd;

    let a_abs = -(2.0 * k.bw * v_next + k.w2 * u_next);
    (u_next, v_next, a_abs)
}

/// One Duhamel accumulation term at lag `lag`, and the sample evaluation.
/// Shared between backends for the same bitwise-equality reason as
/// [`nj_step`].
#[inline(always)]
fn duhamel_term(k: &SdofConsts, a: f64, lag: f64, sum_sin: &mut f64, sum_cos: &mut f64) {
    let decay = (-k.bw * lag).exp();
    let (s, c) = (k.wd * lag).sin_cos();
    *sum_sin += a * decay * s;
    *sum_cos += a * decay * c;
}

/// Converts the Duhamel convolution sums at one output sample into
/// `(u, v, absolute acceleration)`.
#[inline(always)]
fn duhamel_sample(k: &SdofConsts, dt: f64, sum_sin: f64, sum_cos: f64) -> (f64, f64, f64) {
    let u = -(dt / k.wd) * sum_sin;
    // u'(t) = d/dt of the integral: -(dt) * [cos kernel - (ζω/ωd) sin kernel]
    let v = -dt * (sum_cos - (k.bw / k.wd) * sum_sin);
    let a_abs = -(2.0 * k.bw * v + k.w * k.w * u);
    (u, v, a_abs)
}

/// Direct Duhamel integral: `u(t) = -(1/ωd) ∫ a(τ) e^{-ζω(t-τ)} sin(ωd(t-τ)) dτ`,
/// evaluated with the rectangle rule at every output sample — `O(D²)`.
/// Velocity comes from the companion cosine kernel; absolute acceleration
/// from the equation of motion.
fn duhamel_peaks(acc: &[f64], dt: f64, period: f64, damping: f64) -> SdofPeaks {
    let k = sdof_consts(dt, period, damping);
    let n = acc.len();

    let mut sd = 0.0f64;
    let mut sv = 0.0f64;
    let mut sa = 0.0f64;

    for j in 0..n {
        // u(t_j), u'(t_j) via the convolution sums.
        let mut sum_sin = 0.0;
        let mut sum_cos = 0.0;
        let tj = j as f64 * dt;
        for (i, &a) in acc.iter().take(j + 1).enumerate() {
            let lag = tj - i as f64 * dt;
            duhamel_term(&k, a, lag, &mut sum_sin, &mut sum_cos);
        }
        let (u, v, a_abs) = duhamel_sample(&k, dt, sum_sin, sum_cos);
        sd = sd.max(u.abs());
        sv = sv.max(v.abs());
        sa = sa.max(a_abs.abs());
    }

    SdofPeaks { sd, sv, sa }
}

/// Duhamel peaks for four periods at once. The lag grid is shared across
/// lanes; the per-lane transcendentals (the dominant cost) stay scalar libm
/// calls, so this form is about bitwise-matched lane layout, not speedup —
/// the Nigam–Jennings lane kernel is where the across-period win lives.
fn duhamel_peaks_x4(
    acc: &[f64],
    dt: f64,
    periods: &[f64; LANES],
    damping: f64,
) -> [SdofPeaks; LANES] {
    let k: [SdofConsts; LANES] = std::array::from_fn(|l| sdof_consts(dt, periods[l], damping));
    let n = acc.len();

    let mut sd = [0.0f64; LANES];
    let mut sv = [0.0f64; LANES];
    let mut sa = [0.0f64; LANES];

    for j in 0..n {
        let mut sum_sin = [0.0f64; LANES];
        let mut sum_cos = [0.0f64; LANES];
        let tj = j as f64 * dt;
        for (i, &a) in acc.iter().take(j + 1).enumerate() {
            let lag = tj - i as f64 * dt;
            for l in 0..LANES {
                duhamel_term(&k[l], a, lag, &mut sum_sin[l], &mut sum_cos[l]);
            }
        }
        for l in 0..LANES {
            let (u, v, a_abs) = duhamel_sample(&k[l], dt, sum_sin[l], sum_cos[l]);
            sd[l] = sd[l].max(u.abs());
            sv[l] = sv[l].max(v.abs());
            sa[l] = sa[l].max(a_abs.abs());
        }
    }

    std::array::from_fn(|l| SdofPeaks {
        sd: sd[l],
        sv: sv[l],
        sa: sa[l],
    })
}

/// Exact recurrence for piecewise-linear ground acceleration
/// (Nigam–Jennings). For each step the analytic solution of
/// `u'' + 2ζω u' + ω² u = -a_g(τ)` with `a_g` linear on the step is used to
/// advance `(u, v)` — `O(D)`.
fn nigam_jennings_peaks(acc: &[f64], dt: f64, period: f64, damping: f64) -> SdofPeaks {
    let k = sdof_consts(dt, period, damping);

    let mut u = 0.0f64;
    let mut v = 0.0f64;
    let mut sd = 0.0f64;
    let mut sv = 0.0f64;
    // At rest, absolute acceleration -(2ζω v + ω² u) is zero.
    let mut sa = 0.0f64;

    for i in 0..acc.len() - 1 {
        let (u_next, v_next, a_abs) = nj_step(&k, dt, u, v, acc[i], acc[i + 1]);
        u = u_next;
        v = v_next;
        sd = sd.max(u.abs());
        sv = sv.max(v.abs());
        sa = sa.max(a_abs.abs());
        // Guard against numerical blow-up on absurd inputs.
        debug_assert!(u.is_finite() && v.is_finite());
    }

    SdofPeaks { sd, sv, sa }
}

/// Nigam–Jennings peaks for four periods at once — the across-period lane
/// layout: each period's `(u, v)` recurrence is an independent serial chain,
/// so four of them advance in lockstep over one sweep of the record. The
/// scalar kernel is latency-bound on its single dependent chain; the four
/// independent chains here are what the SIMD backend's throughput comes
/// from. Per lane, [`nj_step`] runs with identical inputs and expression
/// order as the scalar kernel — bitwise-equal by construction.
fn nigam_jennings_peaks_x4(
    acc: &[f64],
    dt: f64,
    periods: &[f64; LANES],
    damping: f64,
) -> [SdofPeaks; LANES] {
    let k: [SdofConsts; LANES] = std::array::from_fn(|l| sdof_consts(dt, periods[l], damping));

    let mut u = [0.0f64; LANES];
    let mut v = [0.0f64; LANES];
    let mut sd = [0.0f64; LANES];
    let mut sv = [0.0f64; LANES];
    let mut sa = [0.0f64; LANES];

    for i in 0..acc.len() - 1 {
        let a0 = acc[i];
        let a1 = acc[i + 1];
        for l in 0..LANES {
            let (u_next, v_next, a_abs) = nj_step(&k[l], dt, u[l], v[l], a0, a1);
            u[l] = u_next;
            v[l] = v_next;
            sd[l] = sd[l].max(u_next.abs());
            sv[l] = sv[l].max(v_next.abs());
            sa[l] = sa[l].max(a_abs.abs());
        }
        debug_assert!(u.iter().all(|x| x.is_finite()));
    }

    std::array::from_fn(|l| SdofPeaks {
        sd: sd[l],
        sv: sv[l],
        sa: sa[l],
    })
}

/// Peaks for four periods at once with the given solver.
fn sdof_peaks_x4(
    acc: &[f64],
    dt: f64,
    periods: &[f64; LANES],
    damping: f64,
    method: ResponseMethod,
) -> [SdofPeaks; LANES] {
    match method {
        ResponseMethod::Duhamel => duhamel_peaks_x4(acc, dt, periods, damping),
        ResponseMethod::NigamJennings => nigam_jennings_peaks_x4(acc, dt, periods, damping),
    }
}

/// Computes a response spectrum over `periods` at one damping ratio.
pub fn response_spectrum(
    acc: &[f64],
    dt: f64,
    periods: &[f64],
    damping: f64,
    method: ResponseMethod,
) -> Result<ResponseSpectrum, DspError> {
    response_spectrum_with(acc, dt, periods, damping, method, DspBackend::Auto)
}

/// As [`response_spectrum`] with an explicit [`DspBackend`].
///
/// The SIMD backend integrates periods in blocks of four (each period's SDOF
/// is an independent chain — the perfect lane layout for this
/// `O(periods × points)` loop), with a scalar tail for the remainder.
/// Backends are bitwise-equal.
pub fn response_spectrum_with(
    acc: &[f64],
    dt: f64,
    periods: &[f64],
    damping: f64,
    method: ResponseMethod,
    backend: DspBackend,
) -> Result<ResponseSpectrum, DspError> {
    let mut sd = Vec::with_capacity(periods.len());
    let mut sv = Vec::with_capacity(periods.len());
    let mut sa = Vec::with_capacity(periods.len());
    match backend.resolve() {
        DspBackend::Scalar => {
            for &t in periods {
                let p = sdof_peaks(acc, dt, t, damping, method)?;
                sd.push(p.sd);
                sv.push(p.sv);
                sa.push(p.sa);
            }
        }
        _ => {
            let chunks = periods.chunks_exact(LANES);
            let tail = chunks.remainder();
            for chunk in chunks {
                for &t in chunk {
                    validate_sdof_args(acc, dt, t, damping)?;
                }
                let block: &[f64; LANES] = chunk.try_into().expect("chunk of LANES");
                for p in sdof_peaks_x4(acc, dt, block, damping, method) {
                    sd.push(p.sd);
                    sv.push(p.sv);
                    sa.push(p.sa);
                }
            }
            for &t in tail {
                let p = sdof_peaks(acc, dt, t, damping, method)?;
                sd.push(p.sd);
                sv.push(p.sv);
                sa.push(p.sa);
            }
        }
    }
    Ok(ResponseSpectrum {
        periods: periods.to_vec(),
        damping,
        sd,
        sv,
        sa,
    })
}

/// As [`response_spectrum`] but evaluating periods in parallel with rayon.
/// Used by the intra-kernel parallelization ablation; the pipeline's Stage IX
/// parallelizes across component files instead.
pub fn response_spectrum_parallel(
    acc: &[f64],
    dt: f64,
    periods: &[f64],
    damping: f64,
    method: ResponseMethod,
) -> Result<ResponseSpectrum, DspError> {
    let peaks: Result<Vec<SdofPeaks>, DspError> = periods
        .par_iter()
        .map(|&t| sdof_peaks(acc, dt, t, damping, method))
        .collect();
    let peaks = peaks?;
    Ok(ResponseSpectrum {
        periods: periods.to_vec(),
        damping,
        sd: peaks.iter().map(|p| p.sd).collect(),
        sv: peaks.iter().map(|p| p.sv).collect(),
        sa: peaks.iter().map(|p| p.sa).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 * dt).sin())
            .collect()
    }

    #[test]
    fn period_grids() {
        let p = standard_periods();
        assert_eq!(p.len(), 91);
        assert!((p[0] - 0.04).abs() < 1e-12);
        assert!((p[90] - 15.0).abs() < 1e-9);
        for w in p.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic]
    fn bad_period_grid_panics() {
        log_spaced_periods(1.0, 0.5, 10);
    }

    #[test]
    fn argument_validation() {
        let acc = vec![1.0, 2.0, 3.0];
        assert!(sdof_peaks(&acc, 0.01, 0.0, 0.05, ResponseMethod::NigamJennings).is_err());
        assert!(sdof_peaks(&acc, 0.01, 1.0, -0.1, ResponseMethod::NigamJennings).is_err());
        assert!(sdof_peaks(&acc, 0.01, 1.0, 1.0, ResponseMethod::NigamJennings).is_err());
        assert!(sdof_peaks(&acc, 0.0, 1.0, 0.05, ResponseMethod::NigamJennings).is_err());
        assert!(sdof_peaks(&[1.0], 0.01, 1.0, 0.05, ResponseMethod::NigamJennings).is_err());
    }

    #[test]
    fn resonant_response_grows() {
        // An oscillator driven at its own frequency responds much more
        // strongly than one far off resonance.
        let dt = 0.005;
        let n = 4000;
        let f0 = 2.0; // 0.5 s period
        let acc = tone(f0, dt, n);
        let on = sdof_peaks(&acc, dt, 0.5, 0.05, ResponseMethod::NigamJennings).unwrap();
        // A stiff oscillator far above the driving frequency barely deflects.
        let off = sdof_peaks(&acc, dt, 0.05, 0.05, ResponseMethod::NigamJennings).unwrap();
        assert!(on.sd > 100.0 * off.sd, "on {} off {}", on.sd, off.sd);
    }

    #[test]
    fn steady_state_amplitude_matches_theory() {
        // Driven SDOF at resonance with damping ζ reaches dynamic
        // amplification 1/(2ζ) over the static response a0/ω².
        let dt = 0.002;
        let n = 60_000; // long record so the transient dies out
        let period = 0.75;
        let zeta = 0.05;
        let f0 = 1.0 / period;
        let acc = tone(f0, dt, n);
        let p = sdof_peaks(&acc, dt, period, zeta, ResponseMethod::NigamJennings).unwrap();
        let w = 2.0 * PI / period;
        let want = 1.0 / (2.0 * zeta) / (w * w); // amplitude 1 forcing
        assert!(
            (p.sd - want).abs() / want < 0.03,
            "sd {} vs theory {}",
            p.sd,
            want
        );
    }

    #[test]
    fn short_period_sa_approaches_pga() {
        // A very stiff oscillator rides the ground: SA -> PGA.
        let dt = 0.001;
        let n = 8000;
        let acc: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                (2.0 * PI * 1.0 * t).sin() * (-((t - 4.0) / 2.0).powi(2)).exp() * 50.0
            })
            .collect();
        let pga = acc.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let p = sdof_peaks(&acc, dt, 0.02, 0.05, ResponseMethod::NigamJennings).unwrap();
        assert!((p.sa - pga).abs() / pga < 0.05, "sa {} pga {}", p.sa, pga);
    }

    #[test]
    fn duhamel_and_nigam_jennings_agree() {
        let dt = 0.01;
        let n = 600;
        let acc: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                (2.0 * PI * 1.3 * t).sin() * (-(t - 3.0f64).powi(2) / 4.0).exp() * 20.0
            })
            .collect();
        for &period in &[0.2, 0.5, 1.0, 2.0] {
            for &z in &[0.02, 0.05, 0.10] {
                let a = sdof_peaks(&acc, dt, period, z, ResponseMethod::Duhamel).unwrap();
                let b = sdof_peaks(&acc, dt, period, z, ResponseMethod::NigamJennings).unwrap();
                // Duhamel uses a rectangle rule: agreement is first-order in dt.
                let tol = 0.08;
                assert!(
                    (a.sd - b.sd).abs() / b.sd.max(1e-12) < tol,
                    "sd T={period} z={z}: duhamel {} nj {}",
                    a.sd,
                    b.sd
                );
                assert!(
                    (a.sa - b.sa).abs() / b.sa.max(1e-12) < tol,
                    "sa T={period} z={z}: duhamel {} nj {}",
                    a.sa,
                    b.sa
                );
            }
        }
    }

    #[test]
    fn more_damping_means_less_response() {
        let dt = 0.005;
        let acc = tone(1.0, dt, 8000);
        let mut last = f64::INFINITY;
        for &z in &[0.02, 0.05, 0.10, 0.20] {
            let p = sdof_peaks(&acc, dt, 1.0, z, ResponseMethod::NigamJennings).unwrap();
            assert!(p.sd < last, "damping {z} did not reduce response");
            last = p.sd;
        }
    }

    #[test]
    fn zero_damping_supported() {
        let dt = 0.01;
        let acc = tone(0.8, dt, 1000);
        let p = sdof_peaks(&acc, dt, 0.7, 0.0, ResponseMethod::NigamJennings).unwrap();
        assert!(p.sd.is_finite() && p.sd > 0.0);
    }

    #[test]
    fn spectrum_shapes() {
        let dt = 0.01;
        let acc = tone(2.0, dt, 3000);
        let periods = log_spaced_periods(0.1, 5.0, 30);
        let spec =
            response_spectrum(&acc, dt, &periods, 0.05, ResponseMethod::NigamJennings).unwrap();
        assert_eq!(spec.len(), 30);
        assert!(!spec.is_empty());
        // Peak of SD-based pseudo-acceleration near the driving period 0.5 s.
        let psa = spec.psa();
        let max_idx = psa
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak_period = spec.periods[max_idx];
        assert!(
            (peak_period - 0.5).abs() < 0.15,
            "psa peak at {peak_period} s, expected ~0.5 s"
        );
        // PSV = w * SD consistency
        let psv = spec.psv();
        #[allow(clippy::needless_range_loop)]
        for i in 0..spec.len() {
            let w = 2.0 * PI / spec.periods[i];
            assert!((psv[i] - w * spec.sd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let dt = 0.01;
        let acc = tone(1.5, dt, 2000);
        let periods = log_spaced_periods(0.05, 10.0, 40);
        let a = response_spectrum(&acc, dt, &periods, 0.05, ResponseMethod::NigamJennings).unwrap();
        let b = response_spectrum_parallel(&acc, dt, &periods, 0.05, ResponseMethod::NigamJennings)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pseudo_velocity_close_to_velocity_at_moderate_damping() {
        // For light damping and mid periods PSV ≈ SV (classic result).
        let dt = 0.005;
        let n = 20_000;
        let acc: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                ((2.0 * PI * 1.1 * t).sin() + 0.6 * (2.0 * PI * 2.7 * t).sin())
                    * (-((t - 25.0) / 12.0).powi(2)).exp()
                    * 30.0
            })
            .collect();
        let p = sdof_peaks(&acc, dt, 1.0, 0.05, ResponseMethod::NigamJennings).unwrap();
        let w = 2.0 * PI / 1.0;
        let psv = w * p.sd;
        assert!((psv - p.sv).abs() / p.sv < 0.25, "psv {psv} sv {}", p.sv);
    }
}
