//! Windowed-sinc FIR filters — the "Hamming band-pass filter" of the paper.
//!
//! Strong-motion processing specifies its band-pass corners as four
//! frequencies: a low-stop/low-pass pair (`FSL`, `FPL`) defining the low-side
//! transition band, and a high-pass/high-stop pair defining the high side.
//! Process #4 applies a *default* band, and process #13 re-filters with the
//! event-specific `FSL`/`FPL` recovered from the velocity Fourier spectrum
//! (process #10).
//!
//! Design method: ideal band-pass impulse response truncated to `taps`
//! samples and tapered with a [`WindowKind`] (Hamming by default). The tap
//! count is derived from the narrower transition band using the standard
//! Hamming design rule (normalized transition width ≈ 3.3 / taps).

use crate::backend::{DspBackend, LANES};
use crate::error::DspError;
use crate::fft::fft_convolve_with;
use crate::window::WindowKind;
use std::f64::consts::PI;

/// Band-pass corner frequencies in Hz.
///
/// The filter transitions from full stop to full pass between `fsl` and
/// `fpl`, and from full pass back to stop between `fph` and `fsh`:
///
/// ```text
/// gain
///  1 |        ____________
///    |       /            \
///  0 |______/              \______
///       fsl  fpl        fph  fsh    frequency
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandPass {
    /// Low-stop frequency (Hz): below this the signal is rejected.
    pub fsl: f64,
    /// Low-pass frequency (Hz): above this (and below `fph`) the signal passes.
    pub fpl: f64,
    /// High-pass frequency (Hz): top of the passband.
    pub fph: f64,
    /// High-stop frequency (Hz): above this the signal is rejected.
    pub fsh: f64,
}

impl BandPass {
    /// The default band used by process #4 before the event-specific corners
    /// are known: 0.05–0.10 Hz low transition, 25–27 Hz high transition.
    /// These mirror typical strong-motion processing defaults (USGS/Caltech
    /// Vol.2-style long-period cut plus an anti-alias high cut).
    pub const DEFAULT: BandPass = BandPass {
        fsl: 0.05,
        fpl: 0.10,
        fph: 25.0,
        fsh: 27.0,
    };

    /// Creates a band, validating the corner ordering.
    pub fn new(fsl: f64, fpl: f64, fph: f64, fsh: f64) -> Result<Self, DspError> {
        let b = BandPass { fsl, fpl, fph, fsh };
        b.validate()?;
        Ok(b)
    }

    /// Returns the default band with the low-side corners replaced by the
    /// event-specific values from the Fourier analysis (process #10).
    pub fn with_low_corners(self, fsl: f64, fpl: f64) -> Result<Self, DspError> {
        BandPass::new(fsl, fpl, self.fph, self.fsh)
    }

    /// Checks `0 <= fsl < fpl < fph < fsh` and finiteness.
    pub fn validate(&self) -> Result<(), DspError> {
        let vals = [self.fsl, self.fpl, self.fph, self.fsh];
        if vals.iter().any(|v| !v.is_finite()) {
            return Err(DspError::InvalidBand(format!(
                "non-finite corner in {self:?}"
            )));
        }
        if !(0.0 <= self.fsl && self.fsl < self.fpl && self.fpl < self.fph && self.fph < self.fsh) {
            return Err(DspError::InvalidBand(format!(
                "corners must satisfy 0 <= fsl < fpl < fph < fsh, got {self:?}"
            )));
        }
        Ok(())
    }

    /// The narrower of the two transition bandwidths, Hz.
    pub fn min_transition(&self) -> f64 {
        (self.fpl - self.fsl).min(self.fsh - self.fph)
    }
}

/// A designed FIR filter (symmetric, linear-phase, odd tap count).
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    coeffs: Vec<f64>,
    /// Sampling interval the filter was designed for (seconds).
    dt: f64,
}

impl FirFilter {
    /// Designs a windowed-sinc band-pass filter for signals sampled at
    /// interval `dt` seconds.
    ///
    /// The tap count follows the Hamming rule `taps ≈ 3.3 / (Δf · dt)` where
    /// `Δf` is the narrower transition band, clamped to `[11, max_taps]` and
    /// forced odd so the filter has an integral group delay.
    pub fn band_pass(band: BandPass, dt: f64, window: WindowKind) -> Result<Self, DspError> {
        Self::band_pass_with_max_taps(band, dt, window, 4001)
    }

    /// As [`FirFilter::band_pass`] but with an explicit cap on tap count.
    pub fn band_pass_with_max_taps(
        band: BandPass,
        dt: f64,
        window: WindowKind,
        max_taps: usize,
    ) -> Result<Self, DspError> {
        band.validate()?;
        if !(dt.is_finite() && dt > 0.0) {
            return Err(DspError::InvalidSampling(dt));
        }
        let nyquist = 0.5 / dt;
        if band.fpl >= nyquist {
            return Err(DspError::InvalidBand(format!(
                "low passband edge {} Hz is at/above Nyquist {} Hz",
                band.fpl, nyquist
            )));
        }

        // Effective band: clamp the high transition inside Nyquist, and use
        // the clamped corners *consistently* from here on (transition width,
        // cutoffs, normalization frequency all read `eff`, never `band`). A
        // record sampled more slowly than the default 27 Hz stop band simply
        // keeps everything up to Nyquist on the high side.
        let eff = if band.fsh >= nyquist {
            let fsh = nyquist * 0.999;
            let fph = (band.fph.min(fsh * 0.95)).max(band.fpl * 1.01);
            BandPass {
                fsl: band.fsl,
                fpl: band.fpl,
                fph,
                fsh,
            }
        } else {
            band
        };

        let trans = eff.min_transition().max(1e-6);
        let norm_trans = trans * dt; // transition width as fraction of fs
        let cap = max_taps.max(11);
        let mut taps = (3.3 / norm_trans).ceil() as usize;
        taps = taps.clamp(11, cap);
        if taps.is_multiple_of(2) {
            // Force an odd tap count without ever exceeding the cap: grow
            // when there is room, otherwise round down to the odd count just
            // below it (an even cap must not yield `cap + 1` taps).
            if taps < cap {
                taps += 1;
            } else {
                taps -= 1;
            }
        }

        // Cutoffs at transition-band midpoints.
        let f_lo = 0.5 * (eff.fsl + eff.fpl);
        let f_hi = 0.5 * (eff.fph + eff.fsh);
        let w_lo = 2.0 * f_lo * dt; // normalized to Nyquist=1
        let w_hi = (2.0 * f_hi * dt).min(1.0 - 1e-9);

        let m = (taps - 1) as isize / 2;
        let mut coeffs = Vec::with_capacity(taps);
        for i in -m..=m {
            // Ideal band-pass = highpass sinc difference: h[n] = w_hi sinc(w_hi n) - w_lo sinc(w_lo n)
            let h = if i == 0 {
                w_hi - w_lo
            } else {
                let x = PI * i as f64;
                ((w_hi * x).sin() - (w_lo * x).sin()) / x
            };
            let w = window.value((i + m) as usize, taps);
            coeffs.push(h * w);
        }

        // Normalize to unit gain at band center (geometric mean frequency).
        // A numerically zero gain there means the band is degenerate (the
        // designed filter passes essentially nothing at its own center);
        // returning the unnormalized near-zero filter would silently destroy
        // the signal downstream, so reject the band instead.
        let fc = (f_lo.max(1e-6) * f_hi).sqrt();
        let gain = frequency_gain(&coeffs, fc, dt);
        if gain.abs() <= 1e-12 {
            return Err(DspError::InvalidBand(format!(
                "band-center gain {gain:.3e} at {fc:.6} Hz is numerically zero; \
                 cannot normalize filter designed for {band:?} at dt={dt}"
            )));
        }
        for c in coeffs.iter_mut() {
            *c /= gain;
        }

        Ok(FirFilter { coeffs, dt })
    }

    /// Filter coefficients (odd length, symmetric).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of taps.
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// Sampling interval the filter was designed for.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Magnitude response at frequency `f` Hz.
    pub fn gain_at(&self, f: f64) -> f64 {
        frequency_gain(&self.coeffs, f, self.dt).abs()
    }

    /// Applies the filter with zero-phase alignment (the linear-phase group
    /// delay of `(taps-1)/2` samples is compensated), returning an output of
    /// the same length as the input. Uses direct convolution — `O(N·taps)`.
    pub fn apply(&self, input: &[f64]) -> Vec<f64> {
        self.apply_with(input, DspBackend::Auto)
    }

    /// As [`FirFilter::apply`] with an explicit [`DspBackend`]. Scalar and
    /// SIMD backends produce bitwise-identical output.
    pub fn apply_with(&self, input: &[f64], backend: DspBackend) -> Vec<f64> {
        let full = convolve_direct_with(input, &self.coeffs, backend);
        center_slice(full, input.len(), self.coeffs.len())
    }

    /// Same as [`FirFilter::apply`] but computing the convolution via FFT —
    /// `O(N log N)`, faster for long filters. Produces the same output to
    /// within numerical tolerance.
    pub fn apply_fft(&self, input: &[f64]) -> Vec<f64> {
        self.apply_fft_with(input, DspBackend::Auto)
    }

    /// As [`FirFilter::apply_fft`] with an explicit [`DspBackend`]. Scalar
    /// and SIMD backends produce bitwise-identical output.
    pub fn apply_fft_with(&self, input: &[f64], backend: DspBackend) -> Vec<f64> {
        if input.is_empty() {
            return Vec::new();
        }
        let full = fft_convolve_with(input, &self.coeffs, backend);
        center_slice(full, input.len(), self.coeffs.len())
    }
}

/// Frequency-response magnitude of a real FIR filter at frequency `f` Hz.
fn frequency_gain(coeffs: &[f64], f: f64, dt: f64) -> f64 {
    frequency_gain_with(coeffs, f, dt, DspBackend::Auto)
}

/// Frequency-response magnitude of a real FIR filter at frequency `f` Hz,
/// with an explicit [`DspBackend`].
///
/// Both backends accumulate the real/imaginary parts into four partial sums
/// (lane `l` owns taps `l, l+4, l+8, …`), reduced with the fixed tree
/// `(s0 + s1) + (s2 + s3)`. The per-lane operation sequences are identical,
/// so the backends are bitwise-equal; the SIMD form merely phrases the
/// multiply-accumulate so LLVM can keep the four lanes packed.
pub fn frequency_gain_with(coeffs: &[f64], f: f64, dt: f64, backend: DspBackend) -> f64 {
    let w = 2.0 * PI * f * dt;
    let mut re = [0.0f64; LANES];
    let mut im = [0.0f64; LANES];
    let chunks = coeffs.chunks_exact(LANES);
    let rem = chunks.remainder();
    match backend.resolve() {
        DspBackend::Scalar => {
            for (blk, ch) in chunks.enumerate() {
                for l in 0..LANES {
                    let n = (blk * LANES + l) as f64;
                    let (s, c) = (w * n).sin_cos();
                    re[l] += ch[l] * c;
                    im[l] -= ch[l] * s;
                }
            }
        }
        _ => {
            for (blk, ch) in chunks.enumerate() {
                // Trig stays scalar (libm); the mul-accumulate below is the
                // packed part. Same per-lane op order as the scalar arm.
                let mut s4 = [0.0f64; LANES];
                let mut c4 = [0.0f64; LANES];
                for l in 0..LANES {
                    let n = (blk * LANES + l) as f64;
                    let (s, c) = (w * n).sin_cos();
                    s4[l] = s;
                    c4[l] = c;
                }
                for l in 0..LANES {
                    re[l] += ch[l] * c4[l];
                    im[l] -= ch[l] * s4[l];
                }
            }
        }
    }
    let base = coeffs.len() - rem.len();
    for (l, &cf) in rem.iter().enumerate() {
        let n = (base + l) as f64;
        let (s, c) = (w * n).sin_cos();
        re[l] += cf * c;
        im[l] -= cf * s;
    }
    let re_t = (re[0] + re[1]) + (re[2] + re[3]);
    let im_t = (im[0] + im[1]) + (im[2] + im[3]);
    re_t.hypot(im_t)
}

/// Direct (time-domain) full convolution; output length `a+b-1`.
///
/// Both backends evaluate output `k` as the gather-form dot product
/// `Σ_i b_rev[i] · apad[k+i]` over a zero-padded copy of `a`, with `i`
/// ascending over the reversed taps. The SIMD path computes four consecutive
/// outputs per step — lane `l` reads the contiguous window `apad[k+l ..]` —
/// with per-output accumulation order identical to the scalar path, so the
/// backends are bitwise-equal. The scalar path is a single serial reduction
/// chain (latency-bound); the four independent SIMD accumulators are what
/// buy the throughput.
pub fn convolve_direct_with(a: &[f64], b: &[f64], backend: DspBackend) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n = a.len();
    let m = b.len();
    let out_len = n + m - 1;

    // apad[m-1 .. m-1+n] = a, zeros elsewhere; br = reversed taps. Every
    // output then sums the full `m` taps — edge outputs just multiply into
    // the zero padding, keeping one accumulation order for all `k`.
    let mut apad = vec![0.0f64; n + 2 * (m - 1)];
    apad[m - 1..m - 1 + n].copy_from_slice(a);
    let br: Vec<f64> = b.iter().rev().copied().collect();

    let mut out = vec![0.0f64; out_len];
    match backend.resolve() {
        DspBackend::Scalar => {
            for (k, o) in out.iter_mut().enumerate() {
                let win = &apad[k..k + m];
                let mut acc = 0.0f64;
                for (x, y) in br.iter().zip(win.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        _ => {
            let mut k = 0;
            while k + LANES <= out_len {
                let mut acc = [0.0f64; LANES];
                for (i, &x) in br.iter().enumerate() {
                    let win = &apad[k + i..k + i + LANES];
                    for l in 0..LANES {
                        acc[l] += x * win[l];
                    }
                }
                out[k..k + LANES].copy_from_slice(&acc);
                k += LANES;
            }
            // Remainder outputs: same serial per-output loop as scalar.
            for (k, o) in out.iter_mut().enumerate().skip(k) {
                let win = &apad[k..k + m];
                let mut acc = 0.0f64;
                for (x, y) in br.iter().zip(win.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    }
    out
}

/// Extracts the group-delay-compensated central `n` samples of a full
/// convolution with a `taps`-length filter.
fn center_slice(mut full: Vec<f64>, n: usize, taps: usize) -> Vec<f64> {
    let delay = (taps - 1) / 2;
    if full.len() < delay + n {
        full.resize(delay + n, 0.0);
    }
    full.drain(..delay);
    full.truncate(n);
    full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 * dt).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn band_validation() {
        assert!(BandPass::new(0.1, 0.2, 20.0, 25.0).is_ok());
        assert!(BandPass::new(0.2, 0.1, 20.0, 25.0).is_err()); // fsl > fpl
        assert!(BandPass::new(-0.1, 0.2, 20.0, 25.0).is_err());
        assert!(BandPass::new(0.1, 0.2, 25.0, 20.0).is_err());
        assert!(BandPass::new(f64::NAN, 0.2, 20.0, 25.0).is_err());
    }

    #[test]
    fn default_band_is_valid() {
        BandPass::DEFAULT.validate().unwrap();
    }

    #[test]
    fn with_low_corners_swaps_low_side() {
        let b = BandPass::DEFAULT.with_low_corners(0.2, 0.4).unwrap();
        assert_eq!(b.fsl, 0.2);
        assert_eq!(b.fpl, 0.4);
        assert_eq!(b.fph, BandPass::DEFAULT.fph);
    }

    #[test]
    fn design_produces_odd_symmetric_taps() {
        let f = FirFilter::band_pass(BandPass::DEFAULT, 0.01, WindowKind::Hamming).unwrap();
        let c = f.coeffs();
        assert_eq!(c.len() % 2, 1);
        for i in 0..c.len() / 2 {
            assert!(
                (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                "asymmetric at {i}"
            );
        }
    }

    #[test]
    fn passband_tone_passes_stopband_tone_rejected() {
        let dt = 0.005; // 200 Hz
        let band = BandPass::new(0.2, 0.5, 20.0, 24.0).unwrap();
        let filt = FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap();
        let n = 8192;

        let pass = filt.apply(&tone(5.0, dt, n));
        let in_rms = rms(&tone(5.0, dt, n));
        // Interior (avoid edge transients)
        let interior = &pass[n / 4..3 * n / 4];
        assert!(
            (rms(interior) - in_rms).abs() / in_rms < 0.05,
            "passband attenuated"
        );

        let stop = filt.apply(&tone(0.05, dt, n));
        let stop_rms = rms(&stop[n / 4..3 * n / 4]);
        assert!(stop_rms < 0.05 * in_rms, "low stopband leak: {stop_rms}");

        let stop_hi = filt.apply(&tone(40.0, dt, n));
        let stop_hi_rms = rms(&stop_hi[n / 4..3 * n / 4]);
        assert!(
            stop_hi_rms < 0.05 * in_rms,
            "high stopband leak: {stop_hi_rms}"
        );
    }

    #[test]
    fn gain_profile() {
        let dt = 0.01;
        let band = BandPass::new(0.2, 0.5, 20.0, 24.0).unwrap();
        let filt = FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap();
        assert!(filt.gain_at(3.0) > 0.95);
        assert!(filt.gain_at(10.0) > 0.95);
        assert!(filt.gain_at(0.05) < 0.05);
        assert!(filt.gain_at(0.0) < 0.05);
    }

    #[test]
    fn fft_and_direct_agree() {
        let dt = 0.01;
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        let x: Vec<f64> = (0..2000).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let a = filt.apply(&x);
        let b = filt.apply_fft(&x);
        assert_eq!(a.len(), b.len());
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn output_length_matches_input() {
        let dt = 0.01;
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        for n in [0usize, 1, 5, 100, 1000] {
            let x = vec![1.0; n];
            assert_eq!(filt.apply(&x).len(), n);
            assert_eq!(filt.apply_fft(&x).len(), n);
        }
    }

    #[test]
    fn linearity_of_filtering() {
        let dt = 0.01;
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        let x = tone(1.0, dt, 500);
        let y = tone(3.0, dt, 500);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
        let fs = filt.apply(&sum);
        let fx = filt.apply(&x);
        let fy = filt.apply(&y);
        for i in 0..500 {
            assert!((fs[i] - (2.0 * fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_band_above_nyquist() {
        let dt = 0.1; // Nyquist 5 Hz
        let band = BandPass::new(6.0, 7.0, 20.0, 25.0).unwrap();
        assert!(FirFilter::band_pass(band, dt, WindowKind::Hamming).is_err());
    }

    #[test]
    fn clamps_high_cut_to_nyquist() {
        let dt = 0.02; // Nyquist 25 Hz; DEFAULT fsh=27 exceeds it
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        assert!(filt.gain_at(5.0) > 0.9);
    }

    #[test]
    fn rejects_bad_dt() {
        assert!(FirFilter::band_pass(BandPass::DEFAULT, 0.0, WindowKind::Hamming).is_err());
        assert!(FirFilter::band_pass(BandPass::DEFAULT, -0.01, WindowKind::Hamming).is_err());
        assert!(FirFilter::band_pass(BandPass::DEFAULT, f64::NAN, WindowKind::Hamming).is_err());
    }

    #[test]
    fn even_max_taps_cap_is_respected() {
        // Regression: the cap used to be applied before the force-odd
        // adjustment, so an even `max_taps` yielded `max_taps + 1` taps.
        let band = BandPass::new(0.05, 0.10, 25.0, 27.0).unwrap();
        for cap in [100usize, 101, 1200, 1201] {
            let f =
                FirFilter::band_pass_with_max_taps(band, 0.005, WindowKind::Hamming, cap).unwrap();
            assert!(f.taps() <= cap, "cap {cap} produced {} taps", f.taps());
            assert_eq!(f.taps() % 2, 1, "cap {cap} produced even tap count");
        }
    }

    #[test]
    fn degenerate_band_zero_gain_is_rejected() {
        // Regression: a band so narrow that the designed filter has
        // numerically zero gain at its own center used to skip normalization
        // silently and return a filter that annihilates the signal.
        let band = BandPass::new(1e-13, 2e-13, 3e-13, 4e-13).unwrap();
        let r = FirFilter::band_pass_with_max_taps(band, 0.01, WindowKind::Hamming, 101);
        assert!(
            matches!(r, Err(DspError::InvalidBand(_))),
            "expected InvalidBand, got {r:?}"
        );
    }

    #[test]
    fn low_sample_rate_clamped_corners_are_consistent() {
        // Regression/pin: with fsh >= Nyquist the high corners are clamped;
        // the transition width and cutoffs must all come from the clamped
        // band (one `eff` local), never a mix of raw and clamped corners.
        let dt = 0.02; // Nyquist 25 Hz < DEFAULT fsh 27 Hz -> clamp kicks in
        let f = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        // Narrow side is the low transition (0.05 Hz): 3.3/(0.05*0.02) =
        // 3300 taps, forced odd below the 4001 cap.
        assert_eq!(f.taps(), 3301);
        // Passband intact; clamped high stop (24.975 Hz) rolls off hard.
        assert!(f.gain_at(10.0) > 0.9);
        assert!(f.gain_at(24.99) < 0.5);
    }

    #[test]
    fn scalar_and_simd_apply_are_bitwise_identical() {
        let dt = 0.005;
        let filt = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
        let x: Vec<f64> = (0..3000)
            .map(|i| ((i * 37) % 101) as f64 * 0.13 - 6.0)
            .collect();
        for n in [0usize, 1, 3, 4, 5, 257, 3000] {
            let a = filt.apply_with(&x[..n], DspBackend::Scalar);
            let b = filt.apply_with(&x[..n], DspBackend::Simd);
            assert_eq!(a, b, "direct apply diverged at n={n}");
            let a = filt.apply_fft_with(&x[..n], DspBackend::Scalar);
            let b = filt.apply_fft_with(&x[..n], DspBackend::Simd);
            assert_eq!(a, b, "fft apply diverged at n={n}");
        }
        let g_s = frequency_gain_with(filt.coeffs(), 1.7, dt, DspBackend::Scalar);
        let g_v = frequency_gain_with(filt.coeffs(), 1.7, dt, DspBackend::Simd);
        assert_eq!(g_s.to_bits(), g_v.to_bits());
    }

    #[test]
    fn zero_phase_alignment() {
        // A narrow pulse should stay centered after filtering (linear phase
        // compensated), not shifted by the group delay.
        let dt = 0.01;
        let filt = FirFilter::band_pass(
            BandPass::new(0.2, 0.5, 20.0, 24.0).unwrap(),
            dt,
            WindowKind::Hamming,
        )
        .unwrap();
        let n = 1001;
        let mut x = vec![0.0; n];
        x[n / 2] = 1.0;
        let y = filt.apply(&x);
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert!(
            (peak as isize - (n / 2) as isize).abs() <= 1,
            "peak at {peak}"
        );
    }
}
