//! Small statistics helpers shared across the pipeline.

/// Arithmetic mean; 0 for empty input.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance; 0 for fewer than 2 samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root mean square; 0 for empty input.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// `(min, max)` of the slice; `(0, 0)` for empty input.
pub fn min_max(x: &[f64]) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = x[0];
    let mut hi = x[0];
    for &v in &x[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(min_max(&[]), (0.0, 0.0));
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn rms_of_square_wave() {
        let x = [1.0, -1.0, 1.0, -1.0];
        assert!((rms(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_finds_extremes() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0, 0.0]), (-1.0, 7.0));
        assert_eq!(min_max(&[5.0]), (5.0, 5.0));
    }
}
