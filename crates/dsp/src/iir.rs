//! Butterworth IIR band-pass filtering.
//!
//! The legacy pipeline uses windowed-sinc FIR filters ([`crate::fir`]);
//! modern strong-motion processing (ObsPy, USGS PRISM) favours Butterworth
//! IIR filters applied forward–backward for zero phase. This module
//! implements the classic design chain — analog Butterworth prototype →
//! band-pass transform → bilinear transform → cascaded biquad sections —
//! and serves as the filter-design ablation.

use crate::complex::Complex;
use crate::error::DspError;

/// One second-order section (biquad), direct-form coefficients normalized
/// so `a0 = 1`: `y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Numerator coefficients.
    pub b: [f64; 3],
    /// Denominator coefficients `a1`, `a2` (`a0` is 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// Runs the section over a signal (direct form II transposed).
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        let mut out = Vec::with_capacity(x.len());
        for &v in x {
            let y = self.b[0] * v + s1;
            s1 = self.b[1] * v - self.a[0] * y + s2;
            s2 = self.b[2] * v - self.a[1] * y;
            out.push(y);
        }
        out
    }

    /// True when both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for a quadratic 1 + a1 z^-1 + a2 z^-2.
        let (a1, a2) = (self.a[0], self.a[1]);
        a2 < 1.0 && (a1.abs() - 1.0) < a2
    }
}

/// A cascaded-biquad IIR filter.
#[derive(Debug, Clone, PartialEq)]
pub struct IirFilter {
    sections: Vec<Biquad>,
    gain: f64,
    dt: f64,
}

impl IirFilter {
    /// Designs a Butterworth band-pass of prototype `order` (the digital
    /// filter has `2·order` poles) with passband `[f_lo, f_hi]` Hz for
    /// signals sampled at `dt` seconds.
    pub fn butterworth_band_pass(
        order: usize,
        f_lo: f64,
        f_hi: f64,
        dt: f64,
    ) -> Result<Self, DspError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(DspError::InvalidSampling(dt));
        }
        let nyquist = 0.5 / dt;
        if !(0.0 < f_lo && f_lo < f_hi && f_hi < nyquist) {
            return Err(DspError::InvalidBand(format!(
                "band [{f_lo}, {f_hi}] must satisfy 0 < lo < hi < Nyquist ({nyquist})"
            )));
        }
        if !(1..=12).contains(&order) {
            return Err(DspError::InvalidArgument(format!(
                "Butterworth order {order} outside 1..=12"
            )));
        }

        // Pre-warped analog band edges.
        let warp = |f: f64| 2.0 / dt * (std::f64::consts::PI * f * dt).tan();
        let w_lo = warp(f_lo);
        let w_hi = warp(f_hi);
        let w0 = (w_lo * w_hi).sqrt();
        let bw = w_hi - w_lo;

        // Analog Butterworth prototype poles (left half-plane unit circle).
        let mut analog_poles = Vec::with_capacity(2 * order);
        for k in 0..order {
            let theta =
                std::f64::consts::PI * (2.0 * k as f64 + order as f64 + 1.0) / (2.0 * order as f64);
            let p = Complex::cis(theta); // Re < 0 by construction
                                         // Low-pass -> band-pass: s_lp = (s^2 + w0^2)/(B s); each
                                         // prototype pole yields two band-pass poles.
            let pb2 = p.scale(bw / 2.0);
            let disc = (pb2 * pb2 - Complex::from_re(w0 * w0)).sqrt();
            analog_poles.push(pb2 + disc);
            analog_poles.push(pb2 - disc);
        }

        // Bilinear transform z = (1 + sT/2)/(1 - sT/2).
        let bilinear = |s: Complex| -> Complex {
            let half = s.scale(dt / 2.0);
            (Complex::ONE + half) / (Complex::ONE - half)
        };
        let digital_poles: Vec<Complex> = analog_poles.iter().map(|&p| bilinear(p)).collect();
        // Band-pass zeros: `order` at s=0 (z=+1) and `order` at s=inf (z=-1).

        // Pair poles into conjugate (or real) pairs to form biquads.
        let mut remaining = digital_poles;
        let mut sections = Vec::with_capacity(order);
        while let Some(p) = remaining.pop() {
            let partner_idx = if p.im.abs() > 1e-12 {
                remaining
                    .iter()
                    .position(|q| (q.re - p.re).abs() < 1e-9 && (q.im + p.im).abs() < 1e-9)
            } else {
                remaining.iter().position(|q| q.im.abs() <= 1e-12)
            };
            let q = match partner_idx {
                Some(idx) => remaining.swap_remove(idx),
                None => {
                    return Err(DspError::InvalidArgument(
                        "internal: unpaired pole in Butterworth design".into(),
                    ))
                }
            };
            // (1 - p z^-1)(1 - q z^-1) = 1 - (p+q) z^-1 + pq z^-2; for a
            // conjugate/real pair the coefficients are real.
            let a1 = -(p + q).re;
            let a2 = (p * q).re;
            sections.push(Biquad {
                // One zero at z=+1 and one at z=-1 per section: (1 - z^-2).
                b: [1.0, 0.0, -1.0],
                a: [a1, a2],
            });
        }

        let mut filter = IirFilter {
            sections,
            gain: 1.0,
            dt,
        };
        // Normalize to unit gain at the (digital) center frequency.
        let fc = (f_lo * f_hi).sqrt();
        let g = filter.gain_at(fc);
        if g <= 0.0 || !g.is_finite() {
            return Err(DspError::InvalidArgument(
                "internal: degenerate Butterworth gain".into(),
            ));
        }
        filter.gain = 1.0 / g;
        Ok(filter)
    }

    /// Number of biquad sections (= prototype order).
    pub fn sections(&self) -> usize {
        self.sections.len()
    }

    /// True when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(|s| s.is_stable())
    }

    /// Magnitude response at `f` Hz.
    pub fn gain_at(&self, f: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f * self.dt;
        let z1 = Complex::cis(-w); // z^{-1}
        let z2 = z1 * z1;
        let mut h = Complex::from_re(self.gain);
        for s in &self.sections {
            let num = Complex::from_re(s.b[0]) + z1.scale(s.b[1]) + z2.scale(s.b[2]);
            let den = Complex::ONE + z1.scale(s.a[0]) + z2.scale(s.a[1]);
            h *= num / den;
        }
        h.abs()
    }

    /// Causal (single-pass) filtering.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y: Vec<f64> = x.iter().map(|&v| v * self.gain).collect();
        for s in &self.sections {
            y = s.apply(&y);
        }
        y
    }

    /// Zero-phase filtering: forward pass, then backward pass (squares the
    /// magnitude response, cancels the phase) — `filtfilt`.
    pub fn filtfilt(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.apply(x);
        y.reverse();
        let mut z = self.apply(&y);
        z.reverse();
        z
    }
}

impl Complex {
    /// Principal square root.
    pub(crate) fn sqrt(self) -> Complex {
        let r = self.abs().sqrt();
        let theta = self.arg() / 2.0;
        Complex::cis(theta).scale(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, dt: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 * dt).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn design_validation() {
        assert!(IirFilter::butterworth_band_pass(4, 0.1, 20.0, 0.01).is_ok());
        assert!(IirFilter::butterworth_band_pass(0, 0.1, 20.0, 0.01).is_err());
        assert!(IirFilter::butterworth_band_pass(13, 0.1, 20.0, 0.01).is_err());
        assert!(IirFilter::butterworth_band_pass(4, 20.0, 0.1, 0.01).is_err());
        assert!(IirFilter::butterworth_band_pass(4, 0.1, 60.0, 0.01).is_err()); // above Nyquist
        assert!(IirFilter::butterworth_band_pass(4, 0.1, 20.0, 0.0).is_err());
    }

    #[test]
    fn sections_match_order_and_are_stable() {
        for order in 1..=8 {
            let f = IirFilter::butterworth_band_pass(order, 0.2, 15.0, 0.01).unwrap();
            assert_eq!(f.sections(), order);
            assert!(f.is_stable(), "order {order} unstable");
        }
    }

    #[test]
    fn gain_profile_is_band_pass() {
        let f = IirFilter::butterworth_band_pass(4, 0.5, 10.0, 0.01).unwrap();
        // Unit gain at the geometric center.
        let fc = (0.5f64 * 10.0).sqrt();
        assert!((f.gain_at(fc) - 1.0).abs() < 1e-9);
        // Near-unit gain inside the band.
        assert!(f.gain_at(3.0) > 0.85);
        // Strong attenuation outside.
        assert!(f.gain_at(0.05) < 0.05, "low stop {}", f.gain_at(0.05));
        assert!(f.gain_at(40.0) < 0.05, "high stop {}", f.gain_at(40.0));
    }

    #[test]
    fn butterworth_passband_is_flat() {
        // Maximally flat: mid-band gains are monotone toward the edges.
        let f = IirFilter::butterworth_band_pass(4, 0.5, 10.0, 0.005).unwrap();
        let g2 = f.gain_at(2.0);
        let g3 = f.gain_at(3.0);
        assert!((g2 - g3).abs() < 0.05, "{g2} vs {g3}");
    }

    #[test]
    fn tone_filtering_matches_gain() {
        let dt = 0.005;
        let filt = IirFilter::butterworth_band_pass(4, 0.5, 10.0, dt).unwrap();
        let n = 16384;
        for &f in &[2.0f64, 0.1, 30.0] {
            let y = filt.apply(&tone(f, dt, n));
            let steady = rms(&y[n / 2..]);
            let expect = filt.gain_at(f) / (2.0f64).sqrt();
            assert!(
                (steady - expect).abs() < 0.05 * expect.max(0.01),
                "tone {f} Hz: rms {steady} vs {expect}"
            );
        }
    }

    #[test]
    fn filtfilt_is_zero_phase() {
        let dt = 0.01;
        let filt = IirFilter::butterworth_band_pass(3, 0.5, 15.0, dt).unwrap();
        let n = 2001;
        let mut x = vec![0.0; n];
        x[n / 2] = 1.0;
        let y = filt.filtfilt(&x);
        // Response is symmetric around the impulse position.
        for k in 1..200 {
            assert!(
                (y[n / 2 + k] - y[n / 2 - k]).abs() < 1e-9,
                "asymmetry at lag {k}"
            );
        }
        // Peak stays centered.
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, n / 2);
    }

    #[test]
    fn filtfilt_squares_attenuation() {
        let dt = 0.005;
        let filt = IirFilter::butterworth_band_pass(2, 0.5, 10.0, dt).unwrap();
        let n = 16384;
        let f_stop = 25.0;
        let single = rms(&filt.apply(&tone(f_stop, dt, n))[n / 2..]);
        let double = rms(&filt.filtfilt(&tone(f_stop, dt, n))[n / 4..3 * n / 4]);
        assert!(double < single, "filtfilt {double} vs single {single}");
    }

    #[test]
    fn output_length_preserved() {
        let filt = IirFilter::butterworth_band_pass(4, 0.5, 10.0, 0.01).unwrap();
        for n in [0usize, 1, 7, 100] {
            assert_eq!(filt.apply(&vec![1.0; n]).len(), n);
            assert_eq!(filt.filtfilt(&vec![1.0; n]).len(), n);
        }
    }

    #[test]
    fn complex_sqrt_correct() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        let back = r * r;
        assert!((back.re - z.re).abs() < 1e-12 && (back.im - z.im).abs() < 1e-12);
        // Principal branch: non-negative real part.
        assert!(r.re >= 0.0);
    }
}
