//! Fast Fourier transforms, implemented from scratch.
//!
//! Two engines are provided:
//!
//! * an iterative radix-2 Cooley–Tukey transform for power-of-two lengths,
//!   and
//! * Bluestein's chirp-z algorithm for arbitrary lengths, which reduces an
//!   `N`-point DFT to a circular convolution executed with the radix-2
//!   engine.
//!
//! The public entry points ([`fft`], [`ifft`], [`rfft`], [`irfft`]) accept
//! any length. Conventions: `fft` computes `X[k] = sum_n x[n] e^{-2πi nk/N}`
//! (no normalization), `ifft` applies the `1/N` factor, matching the common
//! engineering convention used by strong-motion processing codes.

use crate::backend::{DspBackend, LANES};
use crate::complex::Complex;
use std::f64::consts::PI;

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// True if `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place bit-reversal permutation for power-of-two-length slices.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse` selects the conjugate transform (without the `1/N` factor).
///
/// Both backends read twiddles from one precomputed half-size table (stage
/// `len` uses stride `n/len`), replacing the serial `w *= wlen` recurrence —
/// that recurrence chained every butterfly to the previous one, which both
/// blocked the lane layout and accumulated rounding. With the table, every
/// butterfly is independent and performs identical IEEE operations in both
/// backends, so scalar and SIMD results are bitwise-equal.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
fn fft_pow2_inplace_with(data: &mut [Complex], inverse: bool, backend: DspBackend) {
    let n = data.len();
    assert!(
        is_pow2(n),
        "fft_pow2_inplace requires power-of-two length, got {n}"
    );
    if n == 1 {
        return;
    }
    bit_reverse_permute(data);

    // tw[j] = e^{sign·2πi·j/n}; stage `len` reads tw[j · n/len] = e^{sign·2πi·j/len}.
    let sign = if inverse { 1.0 } else { -1.0 };
    let tw: Vec<Complex> = (0..n / 2)
        .map(|j| Complex::cis(sign * 2.0 * PI * j as f64 / n as f64))
        .collect();

    match backend.resolve() {
        DspBackend::Scalar => butterflies_scalar(data, &tw),
        _ => butterflies_simd(data, &tw),
    }
}

/// Scalar butterfly sweep: one table-driven butterfly at a time.
fn butterflies_scalar(data: &mut [Complex], tw: &[Complex]) {
    let n = data.len();
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        for chunk in data.chunks_mut(len) {
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (j, (a, b)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                let u = *a;
                let v = *b * tw[j * stride];
                *a = u + v;
                *b = u - v;
            }
        }
        len <<= 1;
    }
}

/// 4-lane butterfly sweep: four butterflies per step with the complex
/// arithmetic spelled out lane-wise (same expressions as `Complex`'s
/// operators, so bitwise-equal to [`butterflies_scalar`]). The small early
/// stages (`len/2 < 4`) fall through to the scalar tail loop.
fn butterflies_simd(data: &mut [Complex], tw: &[Complex]) {
    let n = data.len();
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let half = len / 2;
        for chunk in data.chunks_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            let mut j = 0;
            while j + LANES <= half {
                let mut ar = [0.0f64; LANES];
                let mut ai = [0.0f64; LANES];
                let mut br = [0.0f64; LANES];
                let mut bi = [0.0f64; LANES];
                let mut wr = [0.0f64; LANES];
                let mut wi = [0.0f64; LANES];
                for l in 0..LANES {
                    let w = tw[(j + l) * stride];
                    wr[l] = w.re;
                    wi[l] = w.im;
                    ar[l] = lo[j + l].re;
                    ai[l] = lo[j + l].im;
                    br[l] = hi[j + l].re;
                    bi[l] = hi[j + l].im;
                }
                for l in 0..LANES {
                    let vr = br[l] * wr[l] - bi[l] * wi[l];
                    let vi = br[l] * wi[l] + bi[l] * wr[l];
                    lo[j + l] = Complex::new(ar[l] + vr, ai[l] + vi);
                    hi[j + l] = Complex::new(ar[l] - vr, ai[l] - vi);
                }
                j += LANES;
            }
            while j < half {
                let u = lo[j];
                let v = hi[j] * tw[j * stride];
                lo[j] = u + v;
                hi[j] = u - v;
                j += 1;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length. Returns a new vector of the same length.
///
/// Power-of-two lengths use radix-2 directly; other lengths use Bluestein.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    fft_with(input, DspBackend::Auto)
}

/// As [`fft`] with an explicit [`DspBackend`]. Backends are bitwise-equal.
pub fn fft_with(input: &[Complex], backend: DspBackend) -> Vec<Complex> {
    let mut data = input.to_vec();
    fft_inplace_with(&mut data, backend);
    data
}

/// Inverse DFT of arbitrary length (includes the `1/N` normalization).
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    ifft_with(input, DspBackend::Auto)
}

/// As [`ifft`] with an explicit [`DspBackend`]. Backends are bitwise-equal.
pub fn ifft_with(input: &[Complex], backend: DspBackend) -> Vec<Complex> {
    let mut data = input.to_vec();
    ifft_inplace_with(&mut data, backend);
    data
}

/// In-place forward DFT of arbitrary length.
pub fn fft_inplace(data: &mut [Complex]) {
    fft_inplace_with(data, DspBackend::Auto);
}

/// As [`fft_inplace`] with an explicit [`DspBackend`].
pub fn fft_inplace_with(data: &mut [Complex], backend: DspBackend) {
    let n = data.len();
    if n == 0 {
        return;
    }
    if is_pow2(n) {
        fft_pow2_inplace_with(data, false, backend);
    } else {
        bluestein(data, false, backend);
    }
}

/// In-place inverse DFT of arbitrary length (includes the `1/N` factor).
pub fn ifft_inplace(data: &mut [Complex]) {
    ifft_inplace_with(data, DspBackend::Auto);
}

/// As [`ifft_inplace`] with an explicit [`DspBackend`].
pub fn ifft_inplace_with(data: &mut [Complex], backend: DspBackend) {
    let n = data.len();
    if n == 0 {
        return;
    }
    if is_pow2(n) {
        fft_pow2_inplace_with(data, true, backend);
    } else {
        bluestein(data, true, backend);
    }
    let inv_n = 1.0 / n as f64;
    for z in data.iter_mut() {
        *z = z.scale(inv_n);
    }
}

/// Bluestein's algorithm: arbitrary-length DFT via chirp multiplication and a
/// power-of-two circular convolution.
fn bluestein(data: &mut [Complex], inverse: bool, backend: DspBackend) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };

    // Chirp w[k] = e^{sign * i * pi * k^2 / n}; computed with k^2 mod 2n to
    // keep the argument small and accurate for large k.
    let m2 = 2 * n;
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let kk = (k * k) % m2;
            Complex::cis(sign * PI * kk as f64 / n as f64)
        })
        .collect();

    let m = next_pow2(2 * n - 1);
    let mut a = vec![Complex::ZERO; m];
    for (i, (&x, &c)) in data.iter().zip(chirp.iter()).enumerate() {
        a[i] = x * c;
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for i in 1..n {
        let v = chirp[i].conj();
        b[i] = v;
        b[m - i] = v;
    }

    fft_pow2_inplace_with(&mut a, false, backend);
    fft_pow2_inplace_with(&mut b, false, backend);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    fft_pow2_inplace_with(&mut a, true, backend);
    let inv_m = 1.0 / m as f64;

    for (k, out) in data.iter_mut().enumerate() {
        *out = a[k].scale(inv_m) * chirp[k];
    }
}

/// Forward DFT of a real signal. Returns the full `N`-point complex spectrum
/// (conjugate-symmetric: `X[N-k] = conj(X[k])`).
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    rfft_with(input, DspBackend::Auto)
}

/// As [`rfft`] with an explicit [`DspBackend`].
pub fn rfft_with(input: &[f64], backend: DspBackend) -> Vec<Complex> {
    let data: Vec<Complex> = input.iter().map(|&x| Complex::from_re(x)).collect();
    fft_with(&data, backend)
}

/// Inverse DFT returning only the real parts. The imaginary residue (which is
/// numerically tiny when the input spectrum is conjugate-symmetric) is
/// discarded.
pub fn irfft(input: &[Complex]) -> Vec<f64> {
    irfft_with(input, DspBackend::Auto)
}

/// As [`irfft`] with an explicit [`DspBackend`].
pub fn irfft_with(input: &[Complex], backend: DspBackend) -> Vec<f64> {
    ifft_with(input, backend)
        .into_iter()
        .map(|z| z.re)
        .collect()
}

/// Frequency (Hz) of DFT bin `k` for a length-`n` signal at sampling interval
/// `dt` seconds. Bins above `n/2` represent negative frequencies.
#[inline]
pub fn bin_frequency(k: usize, n: usize, dt: f64) -> f64 {
    let fs = 1.0 / dt;
    let k = k as f64;
    let n = n as f64;
    if k <= n / 2.0 {
        k * fs / n
    } else {
        (k - n) * fs / n
    }
}

/// Linear (acyclic) convolution of two real sequences via zero-padded FFT.
/// Output length is `a.len() + b.len() - 1`.
pub fn fft_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    fft_convolve_with(a, b, DspBackend::Auto)
}

/// As [`fft_convolve`] with an explicit [`DspBackend`]. Backends are
/// bitwise-equal.
pub fn fft_convolve_with(a: &[f64], b: &[f64], backend: DspBackend) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let m = next_pow2(out_len);
    let mut fa = vec![Complex::ZERO; m];
    let mut fb = vec![Complex::ZERO; m];
    for (dst, &x) in fa.iter_mut().zip(a.iter()) {
        *dst = Complex::from_re(x);
    }
    for (dst, &x) in fb.iter_mut().zip(b.iter()) {
        *dst = Complex::from_re(x);
    }
    fft_pow2_inplace_with(&mut fa, false, backend);
    fft_pow2_inplace_with(&mut fb, false, backend);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x *= *y;
    }
    fft_pow2_inplace_with(&mut fa, true, backend);
    let inv_m = 1.0 / m as f64;
    fa.truncate(out_len);
    fa.into_iter().map(|z| z.re * inv_m).collect()
}

/// Naive `O(N^2)` DFT, used as a reference implementation in tests and kept
/// public so benchmarks can compare against it.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn impulse(n: usize) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; n];
        v[0] = Complex::ONE;
        v
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        for &n in &[1usize, 2, 4, 8, 64] {
            let x = impulse(n);
            let spec = fft(&x);
            for z in &spec {
                assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let n = 16;
        let x = vec![Complex::ONE; n];
        let spec = fft(&x);
        assert!((spec[0].re - n as f64).abs() < 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_pow2() {
        let n = 32;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn fft_matches_naive_arbitrary_lengths() {
        for &n in &[3usize, 5, 6, 7, 12, 17, 100, 243] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.11).cos()))
                .collect();
            assert_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for &n in &[8usize, 13, 50, 128] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, (n - i) as f64 * 0.5))
                .collect();
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-8);
        }
    }

    #[test]
    fn rfft_symmetry() {
        let n = 24;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin() + 0.2).collect();
        let spec = rfft(&x);
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
        let back = irfft(&spec);
        for (u, v) in back.iter().zip(x.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&x);
        // cos tone of amplitude 1 puts N/2 in bins k0 and N-k0.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_theorem() {
        let n = 100; // non power of two -> exercises Bluestein
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
    }

    #[test]
    fn bin_frequency_layout() {
        let n = 8;
        let dt = 0.01; // fs = 100 Hz
        assert_eq!(bin_frequency(0, n, dt), 0.0);
        assert!((bin_frequency(1, n, dt) - 12.5).abs() < 1e-12);
        assert!((bin_frequency(4, n, dt) - 50.0).abs() < 1e-12);
        assert!((bin_frequency(5, n, dt) + 37.5).abs() < 1e-12);
        assert!((bin_frequency(7, n, dt) + 12.5).abs() < 1e-12);
    }

    #[test]
    fn fft_convolve_matches_direct() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -1.0, 0.25];
        let got = fft_convolve(&a, &b);
        let mut want = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                want[i + j] += x * y;
            }
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_convolve_empty() {
        assert!(fft_convolve(&[], &[1.0]).is_empty());
        assert!(fft_convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn linearity() {
        let n = 40;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.0, (i * i % 7) as f64))
            .collect();
        let alpha = Complex::new(2.0, -1.0);
        let combo: Vec<Complex> = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex> = fx
            .iter()
            .zip(fy.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        assert_close(&lhs, &rhs, 1e-8);
    }

    #[test]
    fn empty_input_is_noop() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn time_shift_property() {
        // x[n-1] circularly shifted has spectrum X[k] * e^{-2pi i k/N}.
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.9).sin(), 0.0))
            .collect();
        let mut shifted = x.clone();
        shifted.rotate_right(1);
        let fx = fft(&x);
        let fs = fft(&shifted);
        for k in 0..n {
            let phase = Complex::cis(-2.0 * PI * k as f64 / n as f64);
            let want = fx[k] * phase;
            assert!((fs[k].re - want.re).abs() < 1e-9 && (fs[k].im - want.im).abs() < 1e-9);
        }
    }
}
