//! Error type for the DSP substrate.

use std::fmt;

/// Errors produced by signal-processing routines.
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// A band-pass corner specification was malformed.
    InvalidBand(String),
    /// Sampling interval was non-positive or non-finite.
    InvalidSampling(f64),
    /// The input signal was too short for the requested operation.
    TooShort {
        /// Samples required.
        needed: usize,
        /// Samples provided.
        got: usize,
    },
    /// A numeric argument was out of its legal range.
    InvalidArgument(String),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidBand(msg) => write!(f, "invalid band-pass specification: {msg}"),
            DspError::InvalidSampling(dt) => write!(f, "invalid sampling interval: {dt}"),
            DspError::TooShort { needed, got } => {
                write!(f, "signal too short: need {needed} samples, got {got}")
            }
            DspError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DspError::InvalidBand("x".into())
            .to_string()
            .contains("band-pass"));
        assert!(DspError::InvalidSampling(-1.0).to_string().contains("-1"));
        assert!(DspError::TooShort { needed: 4, got: 2 }
            .to_string()
            .contains("need 4"));
        assert!(DspError::InvalidArgument("k".into())
            .to_string()
            .contains("k"));
    }
}
