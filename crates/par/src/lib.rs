//! # arp-par — an OpenMP-style parallel runtime
//!
//! The paper parallelizes its pipeline with OpenMP `parallel for` loops,
//! Fortran `OMP DO` loops, and `task`/`taskwait` blocks. Rayon covers the
//! same ground but hides the scheduling policy; this crate implements the
//! OpenMP constructs directly on `std::thread` + atomics so the pipeline can
//! reproduce — and ablate — the original scheduling choices:
//!
//! * [`ThreadPool`] — fixed worker pool (the `OMP_NUM_THREADS` team);
//! * [`ThreadPool::parallel_for`] with [`Schedule::Static`],
//!   [`Schedule::Dynamic`], and [`Schedule::Guided`] — the `schedule`
//!   clause;
//! * [`ThreadPool::scope`] — `task` + `taskwait`;
//! * [`ThreadPool::run_dag`] — a dependency-counting DAG scheduler that
//!   starts each task the moment its predecessors complete (OpenMP `task
//!   depend` rather than barrier-separated stages);
//! * [`ThreadPool::run_dag_prioritized`] — the same scheduler with a
//!   per-task dispatch priority, used to critical-path-order the union of
//!   several independent graphs (a multi-event batch) so no subgraph
//!   starves the others;
//! * [`ThreadPool::run_dag_lanes`] — the same scheduler with a per-task
//!   lane hint: nodes tagged I/O run on a small dedicated worker set
//!   (`--io-threads`), so disk-bound nodes never occupy compute workers;
//! * [`CyclicBarrier`] — the implicit worksharing barrier;
//! * [`CountdownLatch`] — the completion primitive underneath.
//!
//! The calling thread always participates in work, which makes nested
//! constructs deadlock-free by construction.

#![warn(missing_docs)]

pub mod barrier;
pub mod latch;
pub mod metrics;
pub mod pool;
pub mod sim;

pub use barrier::CyclicBarrier;
pub use latch::CountdownLatch;
pub use pool::{
    configure_global_io_threads, default_io_threads, BorrowedTask, PoolStatsSnapshot, Schedule,
    TaskScope, ThreadPool,
};
pub use sim::{
    dag_makespan, dag_makespan_lanes, loop_makespan, resource_bounded_makespan,
    scale_super_durations, super_dag_makespan, super_dag_makespan_lanes,
    super_dag_makespan_lanes_scaled, super_dag_makespan_scaled, tasks_makespan,
};
