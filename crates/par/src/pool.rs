//! The worker pool and its worksharing constructs.
//!
//! [`ThreadPool`] keeps a fixed set of worker threads fed from a channel, and
//! offers the two constructs the paper's parallelization uses:
//!
//! * [`ThreadPool::parallel_for`] — an OpenMP `parallel for`/`OMP DO`
//!   equivalent with [`Schedule::Static`], [`Schedule::Dynamic`], and
//!   [`Schedule::Guided`] chunking;
//! * [`ThreadPool::scope`] — OpenMP `task` + `taskwait`: spawn a set of
//!   heterogeneous tasks, return when all have completed.
//!
//! The **calling thread always participates** in the work, so constructs
//! complete even when every pool worker is busy elsewhere (this is what
//! makes nesting deadlock-free: the nested construct can be finished
//! entirely by its caller).
//!
//! Besides the compute workers, a pool may own a small **I/O lane**
//! (`arp-io-{k}` threads, default [`default_io_threads`]): DAG nodes tagged
//! I/O via [`ThreadPool::run_dag_lanes`] are queued on a separate channel
//! drained only by the I/O workers, so a node blocked on the shared disk
//! never occupies a compute worker. With the lane sized zero every node
//! routes to the compute lane — scheduling changes *when* nodes run, never
//! what they produce, so lane-on and lane-off runs emit identical
//! artifacts.

use crate::latch::CountdownLatch;
use crate::metrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Loop-scheduling policy, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks of roughly `n / threads` iterations.
    Static,
    /// Fixed-size chunks claimed on demand (the argument is the chunk size;
    /// 0 is treated as 1).
    Dynamic(usize),
    /// Exponentially shrinking chunks: each claim takes
    /// `max(min_chunk, remaining / (2 · threads))`.
    Guided(usize),
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A borrowed task accepted by [`ThreadPool::run_tasks`].
pub type BorrowedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Observability counters for a pool (all monotonically increasing).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Jobs executed by dedicated worker threads.
    jobs_on_workers: AtomicU64,
    /// Jobs executed by *helping* threads (blocked constructs draining the
    /// queue while they wait).
    jobs_helped: AtomicU64,
    /// `parallel_for` constructs completed.
    loops_completed: AtomicU64,
    /// Panics caught inside jobs.
    panics_caught: AtomicU64,
    /// Nodes handed to the dependency scheduler by [`ThreadPool::run_dag`]
    /// (each node is dispatched exactly once, when its last predecessor
    /// completes).
    dag_dispatches: AtomicU64,
    /// High-water mark of dispatched-but-not-yet-started DAG nodes — how
    /// deep the ready queue ever got.
    dag_ready_peak: AtomicU64,
    /// `run_dag` constructs completed.
    dags_completed: AtomicU64,
    /// Jobs executed by dedicated I/O-lane workers.
    io_jobs_on_workers: AtomicU64,
    /// DAG nodes routed to the I/O lane (a subset of `dag_dispatches`).
    io_dispatches: AtomicU64,
    /// High-water mark of dispatched-but-not-yet-started I/O-lane nodes.
    io_ready_peak: AtomicU64,
    /// Threads currently executing a job (workers plus helpers) — an
    /// instantaneous level feeding the `workers-busy` counter track and
    /// gauge, not part of the snapshot.
    busy_threads: AtomicI64,
    /// As `busy_threads`, for the I/O-lane workers (`io-workers-busy`).
    io_busy_threads: AtomicI64,
}

impl PoolStats {
    /// One thread entered a job: raise its lane's busy level and publish it
    /// to the trace counter track and the live gauge (each a single relaxed
    /// load when its layer is disabled).
    fn job_started(&self, io: bool) {
        if io {
            let busy = self.io_busy_threads.fetch_add(1, Ordering::Relaxed) + 1;
            arp_trace::counter("io-workers-busy", busy as f64);
            metrics::io_workers_busy().add(1);
        } else {
            let busy = self.busy_threads.fetch_add(1, Ordering::Relaxed) + 1;
            arp_trace::counter("workers-busy", busy as f64);
            metrics::workers_busy().add(1);
        }
    }

    /// The matching exit.
    fn job_finished(&self, io: bool) {
        if io {
            let busy = self.io_busy_threads.fetch_sub(1, Ordering::Relaxed) - 1;
            arp_trace::counter("io-workers-busy", busy as f64);
            metrics::io_workers_busy().sub(1);
        } else {
            let busy = self.busy_threads.fetch_sub(1, Ordering::Relaxed) - 1;
            arp_trace::counter("workers-busy", busy as f64);
            metrics::workers_busy().sub(1);
        }
    }
}

/// A point-in-time snapshot of [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Jobs executed by dedicated workers.
    pub jobs_on_workers: u64,
    /// Jobs executed by helping (blocked) threads.
    pub jobs_helped: u64,
    /// Completed `parallel_for` constructs.
    pub loops_completed: u64,
    /// Panics caught inside jobs.
    pub panics_caught: u64,
    /// Nodes dispatched by the DAG scheduler.
    pub dag_dispatches: u64,
    /// Deepest the DAG ready queue ever got.
    pub dag_ready_peak: u64,
    /// Completed `run_dag` constructs.
    pub dags_completed: u64,
    /// Jobs executed by dedicated I/O-lane workers.
    pub io_jobs_on_workers: u64,
    /// DAG nodes routed to the I/O lane (a subset of `dag_dispatches`).
    pub io_dispatches: u64,
    /// Deepest the I/O-lane ready queue ever got.
    pub io_ready_peak: u64,
}

impl PoolStatsSnapshot {
    /// Counter growth between `before` and `self`. The ready-queue peaks
    /// are high-water marks, not counters, so the later values are kept
    /// as-is.
    pub fn delta_since(&self, before: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs_on_workers: self.jobs_on_workers.saturating_sub(before.jobs_on_workers),
            jobs_helped: self.jobs_helped.saturating_sub(before.jobs_helped),
            loops_completed: self.loops_completed.saturating_sub(before.loops_completed),
            panics_caught: self.panics_caught.saturating_sub(before.panics_caught),
            dag_dispatches: self.dag_dispatches.saturating_sub(before.dag_dispatches),
            dag_ready_peak: self.dag_ready_peak,
            dags_completed: self.dags_completed.saturating_sub(before.dags_completed),
            io_jobs_on_workers: self
                .io_jobs_on_workers
                .saturating_sub(before.io_jobs_on_workers),
            io_dispatches: self.io_dispatches.saturating_sub(before.io_dispatches),
            io_ready_peak: self.io_ready_peak,
        }
    }
}

/// Default I/O-lane width for a pool with `threads` compute workers:
/// `max(2, threads / 4)`. Pure-I/O DAG nodes spend their time blocked on
/// the shared disk, so a small lane keeps them off the compute workers
/// without oversubscribing the device.
pub fn default_io_threads(threads: usize) -> usize {
    (threads / 4).max(2)
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    /// Kept so blocked constructs can *help*: a thread waiting for its
    /// latch drains queued jobs instead of sleeping, which is what makes
    /// nested constructs deadlock-free even when every worker is busy.
    receiver: Receiver<Job>,
    /// `None` when the I/O lane is disabled (`io_threads == 0`); every
    /// node then routes to the compute channel. Only the I/O workers
    /// drain this channel — helpers never touch it, so an I/O node can
    /// nest compute constructs without self-deadlock.
    io_sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    io_workers: Vec<JoinHandle<()>>,
    threads: usize,
    io_threads: usize,
    stats: Arc<PoolStats>,
}

/// Shared state of one `parallel_for` invocation.
struct ForState<'f> {
    cursor: AtomicUsize,
    start: usize,
    end: usize,
    threads: usize,
    schedule: Schedule,
    body: &'f (dyn Fn(usize) + Sync),
    panicked: AtomicBool,
}

impl ForState<'_> {
    /// Claims the next chunk, returning a sub-range or `None` when the
    /// iteration space is exhausted.
    fn claim(&self) -> Option<Range<usize>> {
        let n = self.end - self.start;
        let chunk_for = |claimed: usize| -> usize {
            match self.schedule {
                Schedule::Static => n.div_ceil(self.threads).max(1),
                Schedule::Dynamic(c) => c.max(1),
                Schedule::Guided(min) => {
                    let remaining = n.saturating_sub(claimed);
                    (remaining / (2 * self.threads)).max(min.max(1))
                }
            }
        };
        loop {
            let claimed = self.cursor.load(Ordering::Relaxed);
            if claimed >= n {
                return None;
            }
            let size = chunk_for(claimed).min(n - claimed);
            match self.cursor.compare_exchange_weak(
                claimed,
                claimed + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let lo = self.start + claimed;
                    return Some(lo..lo + size);
                }
                Err(_) => continue,
            }
        }
    }

    /// Runs chunks until the space is exhausted or a panic is observed.
    fn drive(&self) {
        while !self.panicked.load(Ordering::Relaxed) {
            let Some(chunk) = self.claim() else { break };
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _span = arp_trace::begin(arp_trace::Cat::Chunk);
                arp_trace::annotate(|a| a.name = format!("for[{}..{})", chunk.start, chunk.end));
                for i in chunk {
                    (self.body)(i);
                }
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Shared state of one `run_dag` invocation, reached by node jobs through a
/// raw pointer (same soundness argument as [`ForState`]: the caller blocks
/// on the latch until every node has counted down).
struct DagState<'env> {
    slots: Vec<parking_lot::Mutex<Option<BorrowedTask<'env>>>>,
    succs: Vec<Vec<usize>>,
    /// Remaining predecessor count per node; the node is dispatched by
    /// whoever decrements it to zero.
    pending: Vec<AtomicUsize>,
    /// Dispatch priority per node (empty = submission order). When several
    /// nodes become ready at once they are enqueued highest-priority first,
    /// and the FIFO pool channel preserves that order.
    priority: Vec<u64>,
    /// Per-node lane hint (empty = every node on the compute lane).
    io_lane: Vec<bool>,
    /// Dispatched-but-not-yet-started nodes (ready-queue depth gauge).
    ready: AtomicUsize,
    /// As `ready`, for nodes routed to the I/O lane.
    io_ready: AtomicUsize,
    panicked: AtomicBool,
}

/// The pair of dispatch channels one `run_dag` invocation sends into.
/// Cloned into every node job so completions can dispatch successors onto
/// the correct lane.
struct LaneSenders {
    compute: Sender<Job>,
    io: Option<Sender<Job>>,
}

impl LaneSenders {
    /// Resolves a node's lane hint to a channel: the I/O channel when the
    /// node is tagged I/O *and* the pool has an I/O lane, the compute
    /// channel otherwise. The returned flag says which lane was picked.
    fn lane_for(&self, io_hint: bool) -> (&Sender<Job>, bool) {
        match &self.io {
            Some(io) if io_hint => (io, true),
            _ => (&self.compute, false),
        }
    }
}

/// Orders a set of simultaneously-ready node indices for dispatch: highest
/// priority first, index order breaking ties (and preserved entirely when no
/// priorities were supplied).
fn order_ready(ready: &mut [usize], priority: &[u64]) {
    if priority.is_empty() {
        ready.sort_unstable();
        return;
    }
    ready.sort_unstable_by_key(|&i| (std::cmp::Reverse(priority[i]), i));
}

/// Enqueues node `i`: builds its job and sends it to the channel of the
/// lane its hint selects.
fn dispatch_dag_node(
    state_ptr: usize,
    i: usize,
    senders: &Arc<LaneSenders>,
    stats: &Arc<PoolStats>,
    latch: &Arc<CountdownLatch>,
) {
    // SAFETY: see `DagState` — the caller of `run_dag` keeps the state
    // alive until the latch opens, which requires this node to finish.
    let state = unsafe { &*(state_ptr as *const DagState<'static>) };
    let io_hint = state.io_lane.get(i).copied().unwrap_or(false);
    let (sender, io) = senders.lane_for(io_hint);
    stats.dag_dispatches.fetch_add(1, Ordering::Relaxed);
    if io {
        stats.io_dispatches.fetch_add(1, Ordering::Relaxed);
        let depth = state.io_ready.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        stats.io_ready_peak.fetch_max(depth, Ordering::Relaxed);
        arp_trace::counter("io-lane-depth", depth as f64);
        if arp_metrics::enabled() {
            metrics::nodes_dispatched().inc();
            metrics::io_ready_depth().add(1);
        }
    } else {
        let depth = state.ready.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        stats.dag_ready_peak.fetch_max(depth, Ordering::Relaxed);
        // The counter track samples the same value the peak statistic takes
        // its max over, so the exported track's peak equals `dag_ready_peak`.
        arp_trace::counter("ready-queue-depth", depth as f64);
        if arp_metrics::enabled() {
            metrics::nodes_dispatched().inc();
            metrics::ready_depth().add(1);
        }
    }
    // Stamped at enqueue so the span (and the queue-wait histogram) can
    // separate how long the node sat in the channel from its execute time,
    // without paying for a clock read when both layers are disabled.
    let queued_at = if arp_trace::enabled() || arp_metrics::enabled() {
        Some(Instant::now())
    } else {
        None
    };

    let senders_clone = senders.clone();
    let stats_clone = stats.clone();
    let latch_clone = latch.clone();
    let job: Job = Box::new(move || {
        struct Guard(Arc<CountdownLatch>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.count_down();
            }
        }
        // Declared first so it drops last: the latch must not open until
        // every access to the shared state is over.
        let _guard = Guard(latch_clone.clone());
        let latch = latch_clone;
        let state = unsafe { &*(state_ptr as *const DagState<'static>) };
        let metrics_on = arp_metrics::enabled();
        if io {
            let depth = state.io_ready.fetch_sub(1, Ordering::Relaxed) as f64 - 1.0;
            arp_trace::counter("io-lane-depth", depth);
            if metrics_on {
                metrics::io_ready_depth().sub(1);
            }
        } else {
            let depth = state.ready.fetch_sub(1, Ordering::Relaxed) as f64 - 1.0;
            arp_trace::counter("ready-queue-depth", depth);
            if metrics_on {
                metrics::ready_depth().sub(1);
            }
        }
        if metrics_on {
            if let Some(t) = queued_at {
                let waited = t.elapsed().as_nanos() as u64;
                // The aggregate histogram keeps its historical meaning;
                // the labeled family splits the same samples by lane.
                metrics::queue_wait().record(waited);
                metrics::lane_queue_wait(io).record(waited);
            }
        }
        // After a panic the remaining nodes still cascade (so the latch
        // fully counts down) but their bodies are skipped.
        if !state.panicked.load(Ordering::Relaxed) {
            if let Some(task) = state.slots[i].lock().take() {
                // The span covers only the task body (closed before
                // successors are unlocked); the task itself annotates
                // pipeline attribution over this default name.
                let _span = arp_trace::begin_queued(arp_trace::Cat::DagNode, queued_at);
                arp_trace::annotate(|a| {
                    a.name = if io {
                        format!("node-{i} [io]")
                    } else {
                        format!("node-{i}")
                    }
                });
                let exec_start = metrics_on.then(Instant::now);
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    state.panicked.store(true, Ordering::Relaxed);
                    stats_clone.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(t0) = exec_start {
                    metrics::execute_time().record(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        metrics::nodes_completed().inc();
        let mut unlocked: Vec<usize> = state.succs[i]
            .iter()
            .copied()
            .filter(|&s| state.pending[s].fetch_sub(1, Ordering::AcqRel) == 1)
            .collect();
        order_ready(&mut unlocked, &state.priority);
        for s in unlocked {
            dispatch_dag_node(state_ptr, s, &senders_clone, &stats_clone, &latch);
        }
    });
    sender.send(job).expect("worker channel closed");
}

/// The process-wide shared pool (held at module scope so the sizing hook
/// below can tell whether it has been built yet).
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The I/O-lane width the global pool will be built with. `usize::MAX`
/// means "unset" and resolves to [`default_io_threads`].
static GLOBAL_IO_THREADS: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets the I/O-lane width the global pool is created with (`0` disables
/// the lane). Returns `true` when the setting will take effect — i.e. the
/// global pool has not been built yet. Call before the first
/// [`ThreadPool::global`] use; a later call is a silent no-op apart from
/// the `false` return.
pub fn configure_global_io_threads(io_threads: usize) -> bool {
    GLOBAL_IO_THREADS.store(io_threads, Ordering::Relaxed);
    GLOBAL.get().is_none()
}

/// Spawns one worker feeding from `rx`. `io` selects the lane the worker
/// accounts its jobs to (and the thread-name prefix, which is what the
/// trace layer keys its timeline lanes on).
fn spawn_worker(
    name: String,
    io: bool,
    rx: Receiver<Job>,
    stats: Arc<PoolStats>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            // Jobs carry their own completion/panic accounting;
            // a panicking job must not kill the worker.
            while let Ok(job) = rx.recv() {
                if io {
                    stats.io_jobs_on_workers.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.jobs_on_workers.fetch_add(1, Ordering::Relaxed);
                }
                stats.job_started(io);
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                stats.job_finished(io);
            }
        })
        .expect("failed to spawn pool worker")
}

impl ThreadPool {
    /// Creates a pool with `threads` compute workers (at least 1) and the
    /// default I/O lane ([`default_io_threads`]).
    pub fn new(threads: usize) -> Self {
        Self::with_io(threads, default_io_threads(threads.max(1)))
    }

    /// Creates a pool with `threads` compute workers (at least 1) and
    /// `io_threads` I/O-lane workers. `io_threads == 0` disables the lane
    /// entirely: every DAG node runs on the compute workers exactly as if
    /// no lane hints were given.
    pub fn with_io(threads: usize, io_threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let stats = Arc::new(PoolStats::default());
        let workers = (0..threads)
            .map(|k| {
                spawn_worker(
                    format!("arp-par-{k}"),
                    false,
                    receiver.clone(),
                    stats.clone(),
                )
            })
            .collect();
        let (io_sender, io_workers) = if io_threads == 0 {
            (None, Vec::new())
        } else {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            let ws = (0..io_threads)
                .map(|k| spawn_worker(format!("arp-io-{k}"), true, rx.clone(), stats.clone()))
                .collect();
            (Some(tx), ws)
        };
        ThreadPool {
            sender: Some(sender),
            receiver,
            io_sender,
            workers,
            io_workers,
            threads,
            io_threads,
            stats,
        }
    }

    /// Snapshot of the pool's observability counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs_on_workers: self.stats.jobs_on_workers.load(Ordering::Relaxed),
            jobs_helped: self.stats.jobs_helped.load(Ordering::Relaxed),
            loops_completed: self.stats.loops_completed.load(Ordering::Relaxed),
            panics_caught: self.stats.panics_caught.load(Ordering::Relaxed),
            dag_dispatches: self.stats.dag_dispatches.load(Ordering::Relaxed),
            dag_ready_peak: self.stats.dag_ready_peak.load(Ordering::Relaxed),
            dags_completed: self.stats.dags_completed.load(Ordering::Relaxed),
            io_jobs_on_workers: self.stats.io_jobs_on_workers.load(Ordering::Relaxed),
            io_dispatches: self.stats.io_dispatches.load(Ordering::Relaxed),
            io_ready_peak: self.stats.io_ready_peak.load(Ordering::Relaxed),
        }
    }

    /// Runs queued jobs until `latch` opens. This is the cooperative wait
    /// that makes nesting safe: if all workers are blocked inside outer
    /// constructs, the blocked threads themselves drain the queue.
    ///
    /// The wait is a *blocking* receive with a short timeout: a helper
    /// with nothing to run sleeps on the channel (a queued job wakes it
    /// immediately), and the timeout bounds how long latch-opening can go
    /// unnoticed. Helpers only ever drain the compute channel — the I/O
    /// channel belongs exclusively to the I/O workers.
    fn help_until_open(&self, latch: &CountdownLatch) {
        while !latch.is_open() {
            if let Ok(job) = self.receiver.recv_timeout(Duration::from_millis(1)) {
                self.stats.jobs_helped.fetch_add(1, Ordering::Relaxed);
                self.stats.job_started(false);
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    self.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                self.stats.job_finished(false);
            }
        }
    }

    /// The process-wide shared pool, sized to the machine's parallelism
    /// (I/O lane per [`configure_global_io_threads`], defaulting to
    /// [`default_io_threads`]).
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            let io = match GLOBAL_IO_THREADS.load(Ordering::Relaxed) {
                usize::MAX => default_io_threads(n),
                configured => configured,
            };
            ThreadPool::with_io(n, io)
        })
    }

    /// Number of compute worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of I/O-lane worker threads (0 = lane disabled).
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Executes `body(i)` for every `i` in `range`, in parallel, returning
    /// when all iterations are complete.
    ///
    /// The calling thread participates; pool workers join as they become
    /// free. Panics in any iteration are collected and re-raised on the
    /// caller after every in-flight chunk has finished.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if range.is_empty() {
            return;
        }
        let state = ForState {
            cursor: AtomicUsize::new(0),
            start: range.start,
            end: range.end,
            threads: self.threads,
            schedule,
            body: &body,
            panicked: AtomicBool::new(false),
        };

        // Helpers get a raw pointer to the stack-held state. Soundness: the
        // latch guarantees every helper has returned before `state` (and the
        // borrowed `body`) go out of scope — including on the panic path,
        // because the latch decrement lives in a drop guard inside the job.
        let helpers = self.threads.min(self.end_helpers(range.end - range.start));
        let latch = Arc::new(CountdownLatch::new(helpers));
        let state_ptr = &state as *const ForState<'_> as usize;
        for _ in 0..helpers {
            let latch = latch.clone();
            let job: Job = Box::new(move || {
                struct Guard(Arc<CountdownLatch>);
                impl Drop for Guard {
                    fn drop(&mut self) {
                        self.0.count_down();
                    }
                }
                let _guard = Guard(latch);
                // SAFETY: the caller blocks on the latch before the state is
                // dropped, so the pointee outlives this access.
                let state = unsafe { &*(state_ptr as *const ForState<'static>) };
                state.drive();
            });
            // The channel only closes on pool drop; a send failure would
            // mean using a pool mid-teardown, which the API can't express.
            self.sender
                .as_ref()
                .expect("pool is shutting down")
                .send(job)
                .expect("worker channel closed");
        }

        state.drive();
        self.help_until_open(&latch);
        self.stats.loops_completed.fetch_add(1, Ordering::Relaxed);

        if state.panicked.load(Ordering::Relaxed) {
            panic!("a parallel_for iteration panicked");
        }
    }

    /// Caps helper count so tiny loops don't enqueue useless jobs.
    fn end_helpers(&self, n: usize) -> usize {
        n.saturating_sub(1).min(self.threads)
    }

    /// Runs a set of heterogeneous tasks to completion (OpenMP
    /// `task`/`taskwait`). See [`ThreadPool::scope`] for the borrowing
    /// variant.
    pub fn run_tasks(&self, tasks: Vec<BorrowedTask<'_>>) {
        if tasks.is_empty() {
            return;
        }
        let slots: Vec<parking_lot::Mutex<Option<BorrowedTask<'_>>>> = tasks
            .into_iter()
            .map(|t| parking_lot::Mutex::new(Some(t)))
            .collect();
        self.parallel_for(0..slots.len(), Schedule::Dynamic(1), |i| {
            if let Some(task) = slots[i].lock().take() {
                task();
            }
        });
    }

    /// Runs a set of interdependent tasks, starting each one the moment its
    /// predecessors complete — a dependency-counting DAG scheduler.
    ///
    /// `preds[i]` lists the task indices that must finish before task `i`
    /// may start. Roots are dispatched immediately; every completing task
    /// decrements its successors' pending counters and dispatches those
    /// that reach zero. The calling thread participates (it drains the
    /// pool queue while waiting), so `run_dag` completes even when every
    /// worker is busy, and tasks may themselves use nested pool
    /// constructs.
    ///
    /// Panics if the graph references an out-of-range index, depends on
    /// itself, or contains a cycle; a panic inside a task is re-raised on
    /// the caller after the whole graph has drained.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(4);
    /// let order = parking_lot::Mutex::new(Vec::new());
    /// // diamond: 0 -> {1, 2} -> 3
    /// pool.run_dag(
    ///     (0..4).map(|i| {
    ///         let order = &order;
    ///         Box::new(move || order.lock().push(i)) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0], vec![0], vec![1, 2]],
    /// );
    /// let order = order.into_inner();
    /// assert_eq!(order[0], 0);
    /// assert_eq!(order[3], 3);
    /// ```
    pub fn run_dag<'env>(&self, tasks: Vec<BorrowedTask<'env>>, preds: &[Vec<usize>]) {
        self.run_dag_prioritized(tasks, preds, &[]);
    }

    /// As [`ThreadPool::run_dag`], with an explicit dispatch priority per
    /// task — the fair-scheduling knob for graphs that union several
    /// independent subgraphs (such as a multi-event batch).
    ///
    /// Whenever several tasks become ready at the same moment (the initial
    /// roots, or siblings unlocked by one completion), they are enqueued
    /// highest priority first and the FIFO worker channel preserves that
    /// order. Passing each task's critical-path weight (its longest
    /// remaining path to an exit) yields critical-path list scheduling:
    /// long chains start early and short subgraphs fill the idle tails
    /// instead of being starved behind one giant subgraph's unordered
    /// nodes. An empty slice means submission (index) order; otherwise
    /// `priority` must have one entry per task.
    ///
    /// Priorities influence only the dispatch *order*, never correctness:
    /// dependencies are enforced exactly as in [`ThreadPool::run_dag`].
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(2);
    /// let done = std::sync::atomic::AtomicUsize::new(0);
    /// // Two independent chains; the heavier one gets priority.
    /// pool.run_dag_prioritized(
    ///     (0..4).map(|_| {
    ///         let done = &done;
    ///         Box::new(move || {
    ///             done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    ///         }) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0], vec![], vec![2]],
    ///     &[10, 10, 3, 3],
    /// );
    /// assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), 4);
    /// ```
    pub fn run_dag_prioritized<'env>(
        &self,
        tasks: Vec<BorrowedTask<'env>>,
        preds: &[Vec<usize>],
        priority: &[u64],
    ) {
        self.run_dag_lanes(tasks, preds, priority, &[]);
    }

    /// As [`ThreadPool::run_dag_prioritized`], with a per-task lane hint:
    /// tasks whose `io_lane` entry is `true` are dispatched to the pool's
    /// I/O workers (when the lane exists), so a task blocked on disk never
    /// occupies a compute worker. An empty slice — or a pool built with
    /// `io_threads == 0` — routes every task to the compute lane;
    /// otherwise `io_lane` must have one entry per task.
    ///
    /// Lane hints influence only *where* a task runs, never correctness:
    /// dependency counting, priority ordering, and panic accounting are
    /// exactly as in [`ThreadPool::run_dag_prioritized`], so lane-on and
    /// lane-off runs of the same graph produce identical results.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::with_io(2, 1);
    /// let sum = std::sync::atomic::AtomicUsize::new(0);
    /// // 0 (compute) -> 1 (I/O): the write lands on an `arp-io-*` thread.
    /// pool.run_dag_lanes(
    ///     (0..2).map(|i| {
    ///         let sum = &sum;
    ///         Box::new(move || {
    ///             sum.fetch_add(i + 1, std::sync::atomic::Ordering::Relaxed);
    ///         }) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0]],
    ///     &[],
    ///     &[false, true],
    /// );
    /// assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 3);
    /// assert!(pool.stats().io_dispatches >= 1);
    /// ```
    pub fn run_dag_lanes<'env>(
        &self,
        tasks: Vec<BorrowedTask<'env>>,
        preds: &[Vec<usize>],
        priority: &[u64],
        io_lane: &[bool],
    ) {
        let n = tasks.len();
        assert!(
            io_lane.is_empty() || io_lane.len() == n,
            "run_dag: one lane hint per task (or none)"
        );
        assert_eq!(preds.len(), n, "run_dag: one predecessor list per task");
        assert!(
            priority.is_empty() || priority.len() == n,
            "run_dag: one priority per task (or none)"
        );
        if n == 0 {
            return;
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                assert!(p < n, "run_dag: task {i} depends on out-of-range {p}");
                assert_ne!(p, i, "run_dag: task {i} depends on itself");
                succs[p].push(i);
                indegree[i] += 1;
            }
        }
        // Kahn's algorithm up front: a cyclic graph would deadlock the
        // latch, so refuse it loudly instead.
        {
            let mut remaining = indegree.clone();
            let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
            let mut seen = 0;
            while let Some(i) = queue.pop() {
                seen += 1;
                for &s in &succs[i] {
                    remaining[s] -= 1;
                    if remaining[s] == 0 {
                        queue.push(s);
                    }
                }
            }
            assert_eq!(seen, n, "run_dag: dependency graph contains a cycle");
        }

        let state = DagState {
            slots: tasks
                .into_iter()
                .map(|t| parking_lot::Mutex::new(Some(t)))
                .collect(),
            succs,
            pending: indegree.iter().map(|&d| AtomicUsize::new(d)).collect(),
            priority: priority.to_vec(),
            io_lane: io_lane.to_vec(),
            ready: AtomicUsize::new(0),
            io_ready: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        };
        let latch = Arc::new(CountdownLatch::new(n));
        let state_ptr = &state as *const DagState<'_> as usize;
        let senders = Arc::new(LaneSenders {
            compute: self.sender.as_ref().expect("pool is shutting down").clone(),
            io: self.io_sender.clone(),
        });
        let mut roots: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        order_ready(&mut roots, priority);
        for i in roots {
            dispatch_dag_node(state_ptr, i, &senders, &self.stats, &latch);
        }
        self.help_until_open(&latch);
        self.stats.dags_completed.fetch_add(1, Ordering::Relaxed);
        if state.panicked.load(Ordering::Relaxed) {
            panic!("a dag task panicked");
        }
    }

    /// Parallel map: applies `f` to every index and collects the results in
    /// index order. Built on [`ThreadPool::parallel_for`], so the calling
    /// thread participates and nesting is safe.
    pub fn parallel_map<T, F>(&self, n: usize, schedule: Schedule, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<parking_lot::Mutex<Option<T>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        self.parallel_for(0..n, schedule, |i| {
            *slots[i].lock() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("parallel_for visits every index"))
            .collect()
    }

    /// Parallel reduction: maps every index through `f` and folds the
    /// results with `combine` (which must be associative; the combination
    /// order is unspecified). Returns `identity` for an empty range.
    pub fn parallel_reduce<T, F, C>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        f: F,
        combine: C,
    ) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let acc = parking_lot::Mutex::new(identity);
        self.parallel_for(0..n, schedule, |i| {
            let v = f(i);
            let mut guard = acc.lock();
            let current = guard.clone();
            *guard = combine(current, v);
        });
        acc.into_inner()
    }

    /// Spawns tasks that may borrow from the enclosing scope and waits for
    /// all of them — the runtime's `#pragma omp task` + `taskwait`.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(4);
    /// let mut a = 0u64;
    /// let mut b = 0u64;
    /// pool.scope(|s| {
    ///     s.spawn(|| a = 1);
    ///     s.spawn(|| b = 2);
    /// });
    /// assert_eq!((a, b), (1, 2));
    /// ```
    pub fn scope<'env, F>(&self, build: F)
    where
        F: FnOnce(&mut TaskScope<'env>),
    {
        let mut scope = TaskScope { tasks: Vec::new() };
        build(&mut scope);
        self.run_tasks(scope.tasks);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels stops the workers' recv loops.
        self.sender.take();
        self.io_sender.take();
        for w in self.workers.drain(..).chain(self.io_workers.drain(..)) {
            let _ = w.join();
        }
    }
}

/// Collects tasks for [`ThreadPool::scope`].
pub struct TaskScope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> TaskScope<'env> {
    /// Registers a task. Tasks run when the scope closure returns; there are
    /// no ordering guarantees between them.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(f));
    }

    /// Number of tasks registered so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks registered.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let p = pool();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic(1),
            Schedule::Dynamic(7),
            Schedule::Guided(1),
            Schedule::Guided(4),
        ] {
            let n = 1000;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            p.parallel_for(0..n, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} under {schedule:?}");
            }
        }
    }

    #[test]
    fn parallel_for_nonzero_start() {
        let p = pool();
        let sum = AtomicU64::new(0);
        p.parallel_for(10..20, Schedule::Dynamic(3), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20).sum::<u64>());
    }

    #[test]
    fn empty_range_is_noop() {
        let p = pool();
        p.parallel_for(5..5, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn single_iteration_runs_on_caller() {
        let p = pool();
        let hit = AtomicUsize::new(0);
        p.parallel_for(0..1, Schedule::Static, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn matches_sequential_result() {
        let p = pool();
        let n = 10_000;
        let par: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        p.parallel_for(0..n, Schedule::Guided(8), |i| {
            par[i].store((i * i) as u64 % 97, Ordering::Relaxed);
        });
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            assert_eq!(par[i].load(Ordering::Relaxed), (i * i) as u64 % 97);
        }
    }

    #[test]
    fn uses_multiple_threads() {
        use std::collections::HashSet;
        let p = ThreadPool::new(4);
        let ids = parking_lot::Mutex::new(HashSet::new());
        p.parallel_for(0..64, Schedule::Dynamic(1), |_| {
            // Make work slow enough that helpers join in.
            std::thread::sleep(std::time::Duration::from_millis(2));
            ids.lock().insert(std::thread::current().id());
        });
        assert!(
            ids.lock().len() >= 2,
            "only {} thread(s) used",
            ids.lock().len()
        );
    }

    #[test]
    fn nested_parallel_for_completes() {
        let p = pool();
        let total = AtomicUsize::new(0);
        p.parallel_for(0..8, Schedule::Dynamic(1), |_| {
            p.parallel_for(0..8, Schedule::Dynamic(1), |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let p = pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.parallel_for(0..100, Schedule::Dynamic(1), |i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let ok = AtomicUsize::new(0);
        p.parallel_for(0..10, Schedule::Static, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let p = pool();
        let mut results = vec![0u64; 5];
        {
            let chunks: Vec<&mut u64> = results.iter_mut().collect();
            p.scope(|s| {
                for (k, slot) in chunks.into_iter().enumerate() {
                    s.spawn(move || *slot = (k as u64 + 1) * 11);
                }
            });
        }
        assert_eq!(results, vec![11, 22, 33, 44, 55]);
    }

    #[test]
    fn empty_scope_is_noop() {
        let p = pool();
        p.scope(|_| {});
    }

    #[test]
    fn scope_len_tracks_spawns() {
        let p = pool();
        p.scope(|s| {
            assert!(s.is_empty());
            s.spawn(|| {});
            s.spawn(|| {});
            assert_eq!(s.len(), 2);
        });
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let g1 = ThreadPool::global();
        let g2 = ThreadPool::global();
        assert!(std::ptr::eq(g1, g2));
        let sum = AtomicU64::new(0);
        g1.parallel_for(0..100, Schedule::Static, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn single_thread_pool_works() {
        let p = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        p.parallel_for(0..50, Schedule::Guided(2), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1225);
    }

    #[test]
    fn zero_thread_request_clamped() {
        let p = ThreadPool::new(0);
        assert_eq!(p.threads(), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let p = pool();
        let out = p.parallel_map(100, Schedule::Dynamic(3), |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert!(p.parallel_map(0, Schedule::Static, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_with_non_copy_results() {
        let p = pool();
        let out = p.parallel_map(20, Schedule::Guided(1), |i| format!("item-{i}"));
        assert_eq!(out[7], "item-7");
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn parallel_reduce_sums() {
        let p = pool();
        let total = p.parallel_reduce(1000, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, (0..1000u64).sum::<u64>());
        // Empty range yields the identity.
        let empty = p.parallel_reduce(0, Schedule::Static, 42u64, |i| i as u64, |a, b| a + b);
        assert_eq!(empty, 42);
    }

    #[test]
    fn parallel_reduce_max() {
        let p = pool();
        let values: Vec<i64> = (0..500).map(|i| ((i * 7919) % 1001) as i64 - 500).collect();
        let max = p.parallel_reduce(
            values.len(),
            Schedule::Dynamic(16),
            i64::MIN,
            |i| values[i],
            i64::max,
        );
        assert_eq!(max, *values.iter().max().unwrap());
    }

    #[test]
    fn stats_track_work() {
        let p = ThreadPool::new(2);
        let before = p.stats();
        assert_eq!(before.loops_completed, 0);
        p.parallel_for(0..64, Schedule::Dynamic(1), |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        let after = p.stats();
        assert_eq!(after.loops_completed, 1);
        assert!(after.jobs_on_workers + after.jobs_helped >= 1);
        assert_eq!(after.panics_caught, 0);
    }

    #[test]
    fn stats_count_panics() {
        let p = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.parallel_for(0..8, Schedule::Dynamic(1), |i| {
                // Make workers likely to pick up chunks before the panic.
                std::thread::sleep(std::time::Duration::from_micros(100));
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The construct completed (with a panic), counters finite & sane.
        let s = p.stats();
        assert_eq!(s.loops_completed, 1);
    }

    /// Boxes a closure as a borrowed task.
    fn task<'env, F: FnOnce() + Send + 'env>(f: F) -> BorrowedTask<'env> {
        Box::new(f)
    }

    #[test]
    fn run_dag_respects_dependencies() {
        let p = pool();
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 4 independent (a small diamond).
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2], vec![]];
        for _ in 0..50 {
            let log = parking_lot::Mutex::new(Vec::new());
            let log_ref = &log;
            p.run_dag(
                (0..5)
                    .map(|i| task(move || log_ref.lock().push(i)))
                    .collect(),
                &preds,
            );
            let log = log.into_inner();
            assert_eq!(log.len(), 5);
            let pos = |v: usize| log.iter().position(|&x| x == v).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    fn run_dag_chain_runs_in_order() {
        let p = pool();
        let n = 64;
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let log = parking_lot::Mutex::new(Vec::new());
        let log_ref = &log;
        p.run_dag(
            (0..n)
                .map(|i| task(move || log_ref.lock().push(i)))
                .collect(),
            &preds,
        );
        assert_eq!(log.into_inner(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn order_ready_sorts_by_priority_then_index() {
        let mut v = vec![3, 0, 2, 1];
        order_ready(&mut v, &[]);
        assert_eq!(v, vec![0, 1, 2, 3], "no priorities: index order");
        let mut v = vec![0, 1, 2, 3];
        order_ready(&mut v, &[5, 9, 9, 1]);
        assert_eq!(v, vec![1, 2, 0, 3], "descending priority, index ties");
    }

    #[test]
    fn run_dag_prioritized_is_correct_under_any_priorities() {
        let p = pool();
        // Same diamond as `run_dag_respects_dependencies`.
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2], vec![]];
        for prio in [
            vec![0u64, 0, 0, 0, 0],
            vec![4, 3, 2, 1, 9],
            vec![1, 2, 3, 4, 5],
        ] {
            let log = parking_lot::Mutex::new(Vec::new());
            let log_ref = &log;
            p.run_dag_prioritized(
                (0..5)
                    .map(|i| task(move || log_ref.lock().push(i)))
                    .collect(),
                &preds,
                &prio,
            );
            let log = log.into_inner();
            assert_eq!(log.len(), 5, "priorities {prio:?}");
            let pos = |v: usize| log.iter().position(|&x| x == v).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    #[should_panic(expected = "one priority per task")]
    fn run_dag_prioritized_rejects_wrong_priority_len() {
        let p = pool();
        p.run_dag_prioritized(vec![task(|| {}), task(|| {})], &[vec![], vec![]], &[1]);
    }

    #[test]
    fn run_dag_empty_and_independent() {
        let p = pool();
        p.run_dag(Vec::new(), &[]);
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        let preds = vec![Vec::new(); 100];
        p.run_dag(
            (0..100u64)
                .map(|i| {
                    task(move || {
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn run_dag_tasks_may_nest_parallel_for() {
        let p = pool();
        let total = AtomicUsize::new(0);
        let preds = vec![vec![], vec![0], vec![0]];
        p.run_dag(
            (0..3)
                .map(|_| {
                    task(|| {
                        p.parallel_for(0..32, Schedule::Dynamic(4), |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(total.load(Ordering::Relaxed), 96);
    }

    #[test]
    fn run_dag_panic_propagates_and_pool_survives() {
        let p = pool();
        let ran_after = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag(
                vec![
                    task(|| panic!("node boom")),
                    task(|| {
                        ran_after.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
                &[vec![], vec![0]],
            );
        }));
        assert!(result.is_err());
        // The dependent node was skipped, not run against broken inputs.
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
        // And the pool is still usable.
        let ok = AtomicUsize::new(0);
        p.run_dag(
            vec![task(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            })],
            &[vec![]],
        );
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_dag_rejects_cycles() {
        let p = pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag(vec![task(|| {}), task(|| {})], &[vec![1], vec![0]]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_dag_stats_count_dispatches() {
        let p = ThreadPool::new(2);
        let before = p.stats();
        let preds = vec![vec![], vec![], vec![0, 1]];
        p.run_dag((0..3).map(|_| task(|| {})).collect(), &preds);
        let delta = p.stats().delta_since(&before);
        assert_eq!(delta.dag_dispatches, 3);
        assert_eq!(delta.dags_completed, 1);
        // Two roots were ready at once at dispatch time.
        assert!(delta.dag_ready_peak >= 1);
        assert_eq!(delta.panics_caught, 0);
    }

    #[test]
    fn default_io_threads_floor_and_scaling() {
        assert_eq!(default_io_threads(1), 2);
        assert_eq!(default_io_threads(4), 2);
        assert_eq!(default_io_threads(8), 2);
        assert_eq!(default_io_threads(16), 4);
        assert_eq!(default_io_threads(64), 16);
    }

    #[test]
    fn io_nodes_run_on_io_workers() {
        let p = ThreadPool::with_io(2, 2);
        let names = parking_lot::Mutex::new(Vec::<(usize, String)>::new());
        let names_ref = &names;
        // 0 (compute) -> {1 io, 2 compute} -> 3 (io)
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let lanes = [false, true, false, true];
        p.run_dag_lanes(
            (0..4)
                .map(|i| {
                    task(move || {
                        let name = std::thread::current().name().unwrap_or("").to_string();
                        names_ref.lock().push((i, name));
                    })
                })
                .collect(),
            &preds,
            &[],
            &lanes,
        );
        let names = names.into_inner();
        assert_eq!(names.len(), 4);
        for (i, name) in &names {
            if lanes[*i] {
                assert!(name.starts_with("arp-io-"), "io node {i} ran on {name:?}");
            } else {
                assert!(
                    !name.starts_with("arp-io-"),
                    "compute node {i} ran on {name:?}"
                );
            }
        }
        let s = p.stats();
        assert_eq!(s.io_dispatches, 2);
        assert_eq!(s.io_jobs_on_workers, 2);
        assert!(s.io_ready_peak >= 1);
    }

    #[test]
    fn lane_hints_are_inert_when_lane_disabled() {
        let p = ThreadPool::with_io(2, 0);
        assert_eq!(p.io_threads(), 0);
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        p.run_dag_lanes(
            (0..4)
                .map(|i| {
                    task(move || {
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect(),
            &[vec![], vec![0], vec![0], vec![1, 2]],
            &[],
            &[false, true, false, true],
        );
        assert_eq!(sum.load(Ordering::Relaxed), 6);
        let s = p.stats();
        assert_eq!(s.io_dispatches, 0, "disabled lane must route to compute");
        assert_eq!(s.io_jobs_on_workers, 0);
        assert_eq!(s.dag_dispatches, 4);
    }

    #[test]
    #[should_panic(expected = "one lane hint per task")]
    fn run_dag_lanes_rejects_wrong_hint_len() {
        let p = pool();
        p.run_dag_lanes(
            vec![task(|| {}), task(|| {})],
            &[vec![], vec![]],
            &[],
            &[true],
        );
    }

    #[test]
    fn io_node_panic_propagates_and_pool_survives() {
        let p = ThreadPool::with_io(2, 1);
        let ran_after = AtomicUsize::new(0);
        let ran_ref = &ran_after;
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag_lanes(
                vec![
                    task(|| panic!("io node boom")),
                    task(move || {
                        ran_ref.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
                &[vec![], vec![0]],
                &[],
                &[true, false],
            );
        }));
        assert!(result.is_err());
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
        assert_eq!(p.stats().panics_caught, 1);
        // The pool (both lanes) is still usable.
        let ok = AtomicUsize::new(0);
        let ok_ref = &ok;
        p.run_dag_lanes(
            vec![task(move || {
                ok_ref.fetch_add(1, Ordering::Relaxed);
            })],
            &[vec![]],
            &[],
            &[true],
        );
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn io_nodes_may_nest_parallel_for() {
        let pool = ThreadPool::with_io(2, 1);
        let p = &pool;
        let total = AtomicUsize::new(0);
        let total_ref = &total;
        p.run_dag_lanes(
            (0..3)
                .map(|_| {
                    task(move || {
                        p.parallel_for(0..32, Schedule::Dynamic(4), |_| {
                            total_ref.fetch_add(1, Ordering::Relaxed);
                        });
                    })
                })
                .collect(),
            &[vec![], vec![0], vec![0]],
            &[],
            &[true, true, false],
        );
        assert_eq!(total.load(Ordering::Relaxed), 96);
    }

    #[test]
    fn help_accounting_covers_every_job() {
        // A 1-compute-thread pool with a long dependency chain forces the
        // caller to help; the blocking-receive wait must not lose or
        // double-count any job.
        let p = ThreadPool::with_io(1, 0);
        let before = p.stats();
        let n = 32;
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        p.run_dag(
            (0..n)
                .map(|_| {
                    task(move || {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        hits_ref.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(hits.load(Ordering::Relaxed), n);
        let delta = p.stats().delta_since(&before);
        assert_eq!(delta.dag_dispatches, n as u64);
        assert_eq!(
            delta.jobs_on_workers + delta.jobs_helped,
            n as u64,
            "every job accounted to exactly one of worker/helper"
        );
        assert_eq!(delta.panics_caught, 0);
    }

    #[test]
    fn stress_many_small_loops() {
        let p = pool();
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            p.parallel_for(0..round % 17, Schedule::Dynamic(1), |_| {
                sum.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), round % 17);
        }
    }
}
