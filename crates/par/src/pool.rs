//! The worker pool and its worksharing constructs.
//!
//! [`ThreadPool`] keeps a fixed set of worker threads fed from a channel, and
//! offers the two constructs the paper's parallelization uses:
//!
//! * [`ThreadPool::parallel_for`] — an OpenMP `parallel for`/`OMP DO`
//!   equivalent with [`Schedule::Static`], [`Schedule::Dynamic`], and
//!   [`Schedule::Guided`] chunking;
//! * [`ThreadPool::scope`] — OpenMP `task` + `taskwait`: spawn a set of
//!   heterogeneous tasks, return when all have completed.
//!
//! The **calling thread always participates** in the work, so constructs
//! complete even when every pool worker is busy elsewhere (this is what
//! makes nesting deadlock-free: the nested construct can be finished
//! entirely by its caller).
//!
//! **Scheduling substrate.** Each worker owns a Chase-Lev-style deque
//! ([`crossbeam::deque`]): it pushes and pops its own work LIFO (hot in
//! cache) while idle workers steal FIFO from the front of other workers'
//! deques. Work submitted from outside the pool enters per-lane
//! [`crossbeam::deque::Injector`] queues that every worker of the lane
//! drains.
//!
//! Besides the compute workers, a pool may own a small **I/O lane**
//! (`arp-io-{k}` threads, default [`default_io_threads`]): DAG nodes
//! tagged I/O via [`ThreadPool::run_dag_lanes`] carry an *affinity hint*,
//! not a hard placement. An I/O-tagged node is queued toward the I/O
//! workers, but lane classification only biases each worker's victim
//! order — an idle compute worker steals I/O nodes (capped so blocking
//! I/O can never occupy *every* compute worker) and an idle I/O worker
//! steals compute nodes, so neither lane sits idle while the other is
//! backlogged. With the lane sized zero every node routes to the compute
//! lane — scheduling changes *when and where* nodes run, never what they
//! produce, so lane-on and lane-off runs emit identical artifacts.

use crate::latch::CountdownLatch;
use crate::metrics;
use crossbeam::deque::{self, Steal};
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Loop-scheduling policy, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks of roughly `n / threads` iterations.
    Static,
    /// Fixed-size chunks claimed on demand (the argument is the chunk size;
    /// 0 is treated as 1).
    Dynamic(usize),
    /// Exponentially shrinking chunks: each claim takes
    /// `max(min_chunk, remaining / (2 · threads))`.
    Guided(usize),
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` with a literal yields `&str`, with formatting a `String`),
/// so `catch_unwind` sites preserve it instead of dropping the payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A borrowed task accepted by [`ThreadPool::run_tasks`].
pub type BorrowedTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Observability counters for a pool (all monotonically increasing).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Jobs executed by dedicated worker threads.
    jobs_on_workers: AtomicU64,
    /// Jobs executed by *helping* threads (blocked constructs draining the
    /// queue while they wait).
    jobs_helped: AtomicU64,
    /// `parallel_for` constructs completed.
    loops_completed: AtomicU64,
    /// Panics caught inside jobs.
    panics_caught: AtomicU64,
    /// Nodes handed to the dependency scheduler by [`ThreadPool::run_dag`]
    /// (each node is dispatched exactly once, when its last predecessor
    /// completes).
    dag_dispatches: AtomicU64,
    /// High-water mark of dispatched-but-not-yet-started DAG nodes — how
    /// deep the ready queue ever got.
    dag_ready_peak: AtomicU64,
    /// `run_dag` constructs completed.
    dags_completed: AtomicU64,
    /// Jobs executed by dedicated I/O-lane workers.
    io_jobs_on_workers: AtomicU64,
    /// DAG nodes routed to the I/O lane (a subset of `dag_dispatches`).
    io_dispatches: AtomicU64,
    /// High-water mark of dispatched-but-not-yet-started I/O-lane nodes.
    io_ready_peak: AtomicU64,
    /// Probes of another worker's deque or a cross-lane queue (hits and
    /// misses alike).
    steal_attempts: AtomicU64,
    /// Compute-tagged jobs obtained by stealing (from a sibling deque or
    /// across lanes).
    steals_compute: AtomicU64,
    /// I/O-tagged jobs obtained by stealing.
    steals_io: AtomicU64,
    /// Jobs executed by a worker of the *other* lane than their tag —
    /// a subset of the steals.
    cross_lane_steals: AtomicU64,
    /// Threads currently executing a job (workers plus helpers) — an
    /// instantaneous level feeding the `workers-busy` counter track and
    /// gauge, not part of the snapshot.
    busy_threads: AtomicI64,
    /// As `busy_threads`, for the I/O-lane workers (`io-workers-busy`).
    io_busy_threads: AtomicI64,
    /// Total tasks currently sitting in worker-local deques — feeds the
    /// `deque-depth` counter track; not part of the snapshot.
    local_depth: AtomicI64,
}

impl PoolStats {
    /// One thread entered a job: raise its lane's busy level and publish it
    /// to the trace counter track and the live gauge (each a single relaxed
    /// load when its layer is disabled).
    fn job_started(&self, io: bool) {
        if io {
            let busy = self.io_busy_threads.fetch_add(1, Ordering::Relaxed) + 1;
            arp_trace::counter("io-workers-busy", busy as f64);
            metrics::io_workers_busy().add(1);
        } else {
            let busy = self.busy_threads.fetch_add(1, Ordering::Relaxed) + 1;
            arp_trace::counter("workers-busy", busy as f64);
            metrics::workers_busy().add(1);
        }
    }

    /// The matching exit.
    fn job_finished(&self, io: bool) {
        if io {
            let busy = self.io_busy_threads.fetch_sub(1, Ordering::Relaxed) - 1;
            arp_trace::counter("io-workers-busy", busy as f64);
            metrics::io_workers_busy().sub(1);
        } else {
            let busy = self.busy_threads.fetch_sub(1, Ordering::Relaxed) - 1;
            arp_trace::counter("workers-busy", busy as f64);
            metrics::workers_busy().sub(1);
        }
    }

    /// One probe of a stealable queue (hit or miss).
    fn steal_attempted(&self) {
        self.steal_attempts.fetch_add(1, Ordering::Relaxed);
        if arp_metrics::enabled() {
            metrics::steal_attempts().inc();
        }
    }

    /// One successful steal of an `io`-tagged job; `cross` marks a thief
    /// from the other lane. Publishes the cumulative steal count to the
    /// `steals` trace counter track and the by-lane live counters.
    fn steal_recorded(&self, io: bool, cross: bool) {
        if io {
            self.steals_io.fetch_add(1, Ordering::Relaxed);
        } else {
            self.steals_compute.fetch_add(1, Ordering::Relaxed);
        }
        if cross {
            self.cross_lane_steals.fetch_add(1, Ordering::Relaxed);
        }
        let total =
            self.steals_io.load(Ordering::Relaxed) + self.steals_compute.load(Ordering::Relaxed);
        arp_trace::counter("steals", total as f64);
        arp_diag::workers::note_steal();
        if arp_diag::enabled(arp_diag::Level::Trace) {
            let lane = if io { "io" } else { "compute" };
            arp_diag::trace(move || format!("stole a {lane} job (cross-lane: {cross})"));
        }
        if arp_metrics::enabled() {
            metrics::steals(io).inc();
            if cross {
                metrics::cross_lane_steals().inc();
            }
        }
    }

    /// Worker-local deque depth changed by `delta`; publishes the pool
    /// total to the `deque-depth` counter track.
    fn local_depth_changed(&self, delta: i64) {
        let depth = self.local_depth.fetch_add(delta, Ordering::Relaxed) + delta;
        arp_trace::counter("deque-depth", depth as f64);
    }
}

/// A point-in-time snapshot of [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Jobs executed by dedicated workers.
    pub jobs_on_workers: u64,
    /// Jobs executed by helping (blocked) threads.
    pub jobs_helped: u64,
    /// Completed `parallel_for` constructs.
    pub loops_completed: u64,
    /// Panics caught inside jobs.
    pub panics_caught: u64,
    /// Nodes dispatched by the DAG scheduler.
    pub dag_dispatches: u64,
    /// Deepest the DAG ready queue ever got.
    pub dag_ready_peak: u64,
    /// Completed `run_dag` constructs.
    pub dags_completed: u64,
    /// Jobs executed by dedicated I/O-lane workers.
    pub io_jobs_on_workers: u64,
    /// DAG nodes routed to the I/O lane (a subset of `dag_dispatches`).
    pub io_dispatches: u64,
    /// Deepest the I/O-lane ready queue ever got.
    pub io_ready_peak: u64,
    /// Probes of another worker's deque or a cross-lane queue.
    pub steal_attempts: u64,
    /// Compute-tagged jobs obtained by stealing.
    pub steals_compute: u64,
    /// I/O-tagged jobs obtained by stealing.
    pub steals_io: u64,
    /// Jobs executed by a worker of the other lane than their tag.
    pub cross_lane_steals: u64,
}

impl PoolStatsSnapshot {
    /// Counter growth between `before` and `self`. The ready-queue peaks
    /// are high-water marks, not counters, so the later values are kept
    /// as-is.
    pub fn delta_since(&self, before: &PoolStatsSnapshot) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs_on_workers: self.jobs_on_workers.saturating_sub(before.jobs_on_workers),
            jobs_helped: self.jobs_helped.saturating_sub(before.jobs_helped),
            loops_completed: self.loops_completed.saturating_sub(before.loops_completed),
            panics_caught: self.panics_caught.saturating_sub(before.panics_caught),
            dag_dispatches: self.dag_dispatches.saturating_sub(before.dag_dispatches),
            dag_ready_peak: self.dag_ready_peak,
            dags_completed: self.dags_completed.saturating_sub(before.dags_completed),
            io_jobs_on_workers: self
                .io_jobs_on_workers
                .saturating_sub(before.io_jobs_on_workers),
            io_dispatches: self.io_dispatches.saturating_sub(before.io_dispatches),
            io_ready_peak: self.io_ready_peak,
            steal_attempts: self.steal_attempts.saturating_sub(before.steal_attempts),
            steals_compute: self.steals_compute.saturating_sub(before.steals_compute),
            steals_io: self.steals_io.saturating_sub(before.steals_io),
            cross_lane_steals: self
                .cross_lane_steals
                .saturating_sub(before.cross_lane_steals),
        }
    }
}

/// Default I/O-lane width for a pool with `threads` compute workers:
/// `max(2, threads / 4)`. Pure-I/O DAG nodes spend their time blocked on
/// the shared disk, so a small lane keeps them off the compute workers
/// without oversubscribing the device.
pub fn default_io_threads(threads: usize) -> usize {
    (threads / 4).max(2)
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
    io_workers: Vec<JoinHandle<()>>,
    threads: usize,
    io_threads: usize,
    stats: Arc<PoolStats>,
}

/// A queued work item: the job plus its lane tag. The tag is the node's
/// affinity *hint* — any worker may execute the job; the tag only decides
/// which queue it waits in and how thieves prioritize it.
struct Tagged {
    job: Job,
    io: bool,
}

/// The scheduler core shared by workers, dispatchers, and helpers: one
/// global injector per lane, a stealer view of every worker's deque, and
/// the idle/wake machinery.
///
/// Queue invariant: a compute worker's deque only ever holds
/// compute-tagged jobs, an I/O worker's deque only I/O-tagged jobs, and
/// each injector only its own lane's jobs. Cross-lane execution happens
/// at *take* time (a thief running the other lane's job immediately),
/// never by re-queueing — which is what lets helpers drain compute-lane
/// queues knowing they will never pull a blocking I/O job.
struct PoolCore {
    /// Global FIFO queue of compute-lane work.
    injector: deque::Injector<Tagged>,
    /// Global FIFO queue of I/O-lane work (`None` = lane disabled; every
    /// job is then compute-tagged).
    io_injector: Option<deque::Injector<Tagged>>,
    /// Stealer views of the compute workers' deques.
    stealers: Vec<deque::Stealer<Tagged>>,
    /// Stealer views of the I/O workers' deques.
    io_stealers: Vec<deque::Stealer<Tagged>>,
    /// Per-worker deque-depth gauges (compute workers, then I/O workers),
    /// resolved once at pool construction.
    depth_gauges: Vec<&'static arp_metrics::Gauge>,
    /// Compute workers currently executing cross-stolen I/O work. Capped
    /// at `threads - 1`: lane affinity biases victim order, and this cap
    /// is the second half of the guarantee — blocking I/O can occupy at
    /// most all-but-one compute worker.
    cross_io_active: AtomicUsize,
    threads: usize,
    shutdown: AtomicBool,
    /// Bumped on every push; an idle worker that saw no work re-checks
    /// this before sleeping so a concurrent push can't be missed for more
    /// than one `IDLE_WAIT` slice.
    wake_gen: AtomicU64,
    /// Threads currently (or imminently) blocked in [`PoolCore::idle_wait`].
    sleepers: AtomicUsize,
    idle_lock: parking_lot::Mutex<()>,
    idle_cv: parking_lot::Condvar,
    stats: Arc<PoolStats>,
}

/// Upper bound on how long a missed wakeup can delay an idle worker or a
/// helper's latch re-check (the old channel scheduler polled its receive
/// at the same cadence).
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// The deque owned by the pool worker running on the current thread, if
/// any — how dispatch knows it can push locally instead of through the
/// injector.
struct LocalWorker {
    core: Arc<PoolCore>,
    worker: deque::Worker<Tagged>,
    io: bool,
    depth_gauge: &'static arp_metrics::Gauge,
}

thread_local! {
    /// Set once at worker startup, `None` on every other thread.
    static LOCAL: RefCell<Option<LocalWorker>> = const { RefCell::new(None) };
    /// Whether the job currently executing on this thread was taken
    /// across lanes — read by DAG node spans for steal annotation.
    static CROSS_LANE: Cell<bool> = const { Cell::new(false) };
}

/// True when the job currently executing on this thread was stolen across
/// lanes (an I/O-tagged job on a compute worker or vice versa).
pub fn current_job_cross_lane() -> bool {
    CROSS_LANE.with(Cell::get)
}

/// Resolves a `Steal` probe, spinning through transient `Retry` races
/// (with the lock-backed deque these only last as long as a competing
/// lock hold).
fn resolve<T>(mut attempt: impl FnMut() -> Steal<T>) -> Option<T> {
    loop {
        match attempt() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => return None,
            Steal::Retry => std::hint::spin_loop(),
        }
    }
}

impl PoolCore {
    /// True when the current thread is one of this pool's workers; the
    /// payload is its lane.
    fn local_lane(&self) -> Option<bool> {
        LOCAL.with(|l| {
            l.borrow()
                .as_ref()
                .filter(|lw| std::ptr::eq(Arc::as_ptr(&lw.core), self))
                .map(|lw| lw.io)
        })
    }

    /// Routes one work item: onto the current worker's own deque when
    /// `prefer_local` holds, the thread is one of this pool's workers,
    /// and the lanes match (preserving the queue invariant); onto the
    /// job's lane injector otherwise. Always wakes a sleeper.
    fn push(&self, t: Tagged, prefer_local: bool) {
        let leftover = if prefer_local {
            self.try_push_local(t)
        } else {
            Some(t)
        };
        if let Some(t) = leftover {
            match (&self.io_injector, t.io) {
                (Some(inj), true) => inj.push(t),
                _ => self.injector.push(t),
            }
        }
        self.wake();
    }

    /// Local-deque leg of [`PoolCore::push`]; returns the item back when
    /// the current thread can't take it.
    fn try_push_local(&self, t: Tagged) -> Option<Tagged> {
        LOCAL.with(|l| {
            let l = l.borrow();
            match l.as_ref() {
                Some(lw) if std::ptr::eq(Arc::as_ptr(&lw.core), self) && lw.io == t.io => {
                    lw.worker.push(t);
                    lw.depth_gauge.set(lw.worker.len() as i64);
                    self.stats.local_depth_changed(1);
                    None
                }
                _ => Some(t),
            }
        })
    }

    /// Pops the current worker's own deque (LIFO).
    fn pop_local(&self) -> Option<Tagged> {
        LOCAL.with(|l| {
            let l = l.borrow();
            let lw = l
                .as_ref()
                .filter(|lw| std::ptr::eq(Arc::as_ptr(&lw.core), self))?;
            let t = lw.worker.pop()?;
            lw.depth_gauge.set(lw.worker.len() as i64);
            self.stats.local_depth_changed(-1);
            Some(t)
        })
    }

    /// Steals from the victim deque at `idx` (compute workers first, then
    /// I/O workers), keeping its depth gauge honest.
    fn steal_deque(&self, idx: usize) -> Option<Tagged> {
        let stealer = if idx < self.stealers.len() {
            &self.stealers[idx]
        } else {
            &self.io_stealers[idx - self.stealers.len()]
        };
        self.stats.steal_attempted();
        let t = resolve(|| stealer.steal())?;
        self.depth_gauges[idx].set(stealer.len() as i64);
        self.stats.local_depth_changed(-1);
        Some(t)
    }

    /// Finds work for a worker of lane `worker_io` with worker index
    /// `me` (lane-local): own-lane injector first, then sibling deques,
    /// then — lane affinity permitting — the other lane's injector and
    /// deques. The returned job may belong to either lane; cross-lane
    /// I/O work taken by a compute worker has already been counted
    /// against the occupancy cap (released in [`PoolCore::execute`]).
    fn find_work(&self, worker_io: bool, me: usize) -> Option<Tagged> {
        let (own_injector, own_range, other_injector, other_range) = if worker_io {
            let c = self.stealers.len();
            let io = self.io_stealers.len();
            (
                self.io_injector.as_ref(),
                c..c + io,
                Some(&self.injector),
                0..c,
            )
        } else {
            let c = self.stealers.len();
            let io = self.io_stealers.len();
            (
                Some(&self.injector),
                0..c,
                self.io_injector.as_ref(),
                c..c + io,
            )
        };
        let my_abs = if worker_io {
            self.stealers.len() + me
        } else {
            me
        };
        // Own lane: the shared injector, then siblings' deques.
        if let Some(inj) = own_injector {
            if let Some(t) = resolve(|| inj.steal()) {
                return Some(t);
            }
        }
        for idx in own_range {
            if idx == my_abs {
                continue;
            }
            if let Some(t) = self.steal_deque(idx) {
                self.stats.steal_recorded(t.io, t.io != worker_io);
                return Some(t);
            }
        }
        // Cross-lane: compute thieves must reserve an occupancy slot so
        // blocking I/O never covers every compute worker; I/O thieves
        // take compute work freely (compute jobs don't block the lane).
        let reserved = worker_io || self.try_reserve_cross_io();
        if !reserved {
            return None;
        }
        let found = (|| {
            if let Some(inj) = other_injector {
                self.stats.steal_attempted();
                if let Some(t) = resolve(|| inj.steal()) {
                    return Some(t);
                }
            }
            for idx in other_range {
                if let Some(t) = self.steal_deque(idx) {
                    return Some(t);
                }
            }
            None
        })();
        match found {
            Some(t) => {
                let cross = t.io != worker_io;
                self.stats.steal_recorded(t.io, cross);
                // The reservation covers exactly the cross case a compute
                // thief was gated on.
                if !worker_io && !cross {
                    self.release_cross_io();
                }
                Some(t)
            }
            None => {
                if !worker_io {
                    self.release_cross_io();
                }
                None
            }
        }
    }

    /// Claims one cross-lane occupancy slot for a compute worker about to
    /// take I/O work. At most `threads - 1` slots exist, so a pool always
    /// keeps one compute worker free of blocking I/O (single-worker pools
    /// never cross-steal I/O).
    fn try_reserve_cross_io(&self) -> bool {
        let cap = self.threads.saturating_sub(1);
        let mut current = self.cross_io_active.load(Ordering::Relaxed);
        loop {
            if current >= cap {
                return false;
            }
            match self.cross_io_active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    fn release_cross_io(&self) {
        self.cross_io_active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Compute-lane-only work search for *helping* threads (blocked
    /// construct callers and nested workers): own deque when the caller
    /// is one of this pool's compute workers, then the compute injector
    /// and compute deques. Never touches I/O-lane queues, so an I/O node
    /// can nest compute constructs without its helper loop swallowing a
    /// blocking sibling.
    fn find_help_work(&self) -> Option<Tagged> {
        if self.local_lane() == Some(false) {
            if let Some(t) = self.pop_local() {
                return Some(t);
            }
        }
        if let Some(t) = resolve(|| self.injector.steal()) {
            return Some(t);
        }
        for idx in 0..self.stealers.len() {
            if let Some(t) = self.steal_deque(idx) {
                self.stats.steal_recorded(t.io, false);
                return Some(t);
            }
        }
        None
    }

    /// Executes one taken job with lane-keyed busy accounting and panic
    /// containment. `helped` selects the helper counter; a cross-lane job
    /// is flagged for span annotation and, for compute thieves, releases
    /// the occupancy slot reserved at steal time.
    fn execute(&self, t: Tagged, worker_io: bool, helped: bool) {
        let cross = t.io != worker_io;
        if helped {
            self.stats.jobs_helped.fetch_add(1, Ordering::Relaxed);
        } else if worker_io {
            self.stats
                .io_jobs_on_workers
                .fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.jobs_on_workers.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.job_started(worker_io);
        let prev = CROSS_LANE.with(|c| c.replace(cross));
        if let Err(payload) = catch_unwind(AssertUnwindSafe(t.job)) {
            self.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            arp_diag::error(|| {
                format!(
                    "worker contained a panicking job: {}",
                    panic_message(&*payload)
                )
            });
        }
        CROSS_LANE.with(|c| c.set(prev));
        self.stats.job_finished(worker_io);
        if cross && !worker_io {
            self.release_cross_io();
        }
    }

    /// Wakes every sleeping worker/helper. The generation bump happens
    /// before the sleeper check, so a thread that re-validates the
    /// generation under the idle lock cannot sleep through this push.
    fn wake(&self) {
        self.wake_gen.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::Acquire) > 0 {
            let _guard = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
    }

    /// Sleeps until a wake (or `IDLE_WAIT`, whichever first), unless the
    /// wake generation moved past `seen_gen` — then returns immediately
    /// to rescan.
    fn idle_wait(&self, seen_gen: u64) {
        let mut guard = self.idle_lock.lock();
        if self.wake_gen.load(Ordering::Acquire) != seen_gen
            || self.shutdown.load(Ordering::Acquire)
        {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        self.idle_cv.wait_for(&mut guard, IDLE_WAIT);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared state of one `parallel_for` invocation.
struct ForState<'f> {
    cursor: AtomicUsize,
    start: usize,
    end: usize,
    threads: usize,
    schedule: Schedule,
    body: &'f (dyn Fn(usize) + Sync),
    panicked: AtomicBool,
    /// Message of the first observed panic, re-raised on the caller.
    panic_msg: parking_lot::Mutex<Option<String>>,
}

impl ForState<'_> {
    /// Claims the next chunk, returning a sub-range or `None` when the
    /// iteration space is exhausted.
    fn claim(&self) -> Option<Range<usize>> {
        let n = self.end - self.start;
        let chunk_for = |claimed: usize| -> usize {
            match self.schedule {
                Schedule::Static => n.div_ceil(self.threads).max(1),
                Schedule::Dynamic(c) => c.max(1),
                Schedule::Guided(min) => {
                    let remaining = n.saturating_sub(claimed);
                    (remaining / (2 * self.threads)).max(min.max(1))
                }
            }
        };
        loop {
            let claimed = self.cursor.load(Ordering::Relaxed);
            if claimed >= n {
                return None;
            }
            let size = chunk_for(claimed).min(n - claimed);
            match self.cursor.compare_exchange_weak(
                claimed,
                claimed + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let lo = self.start + claimed;
                    return Some(lo..lo + size);
                }
                Err(_) => continue,
            }
        }
    }

    /// Runs chunks until the space is exhausted or a panic is observed.
    fn drive(&self) {
        while !self.panicked.load(Ordering::Relaxed) {
            let Some(chunk) = self.claim() else { break };
            let result = catch_unwind(AssertUnwindSafe(|| {
                let _span = arp_trace::begin(arp_trace::Cat::Chunk);
                arp_trace::annotate(|a| a.name = format!("for[{}..{})", chunk.start, chunk.end));
                for i in chunk {
                    (self.body)(i);
                }
            }));
            if let Err(payload) = result {
                let msg = panic_message(&*payload);
                arp_diag::error(|| format!("parallel_for chunk panicked: {msg}"));
                self.panic_msg.lock().get_or_insert(msg);
                self.panicked.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Shared state of one `run_dag` invocation, reached by node jobs through a
/// raw pointer (same soundness argument as [`ForState`]: the caller blocks
/// on the latch until every node has counted down).
struct DagState<'env> {
    slots: Vec<parking_lot::Mutex<Option<BorrowedTask<'env>>>>,
    succs: Vec<Vec<usize>>,
    /// Remaining predecessor count per node; the node is dispatched by
    /// whoever decrements it to zero.
    pending: Vec<AtomicUsize>,
    /// Dispatch priority per node (empty = submission order). When several
    /// nodes become ready at once they are enqueued highest-priority first,
    /// and the FIFO pool channel preserves that order.
    priority: Vec<u64>,
    /// Per-node lane hint (empty = every node on the compute lane).
    io_lane: Vec<bool>,
    /// Dispatched-but-not-yet-started nodes (ready-queue depth gauge).
    ready: AtomicUsize,
    /// As `ready`, for nodes routed to the I/O lane.
    io_ready: AtomicUsize,
    panicked: AtomicBool,
    /// Message of the first observed panic, re-raised on the caller.
    panic_msg: parking_lot::Mutex<Option<String>>,
}

/// Orders a set of simultaneously-ready node indices for dispatch: highest
/// priority first, index order breaking ties (and preserved entirely when no
/// priorities were supplied).
fn order_ready(ready: &mut [usize], priority: &[u64]) {
    if priority.is_empty() {
        ready.sort_unstable();
        return;
    }
    ready.sort_unstable_by_key(|&i| (std::cmp::Reverse(priority[i]), i));
}

/// Enqueues node `i`: builds its job and pushes it onto the queue its lane
/// hint selects. `prefer_local` marks the first successor a completing
/// node unlocks — it lands on the completing worker's own deque (when the
/// lanes match) so dependency chains stay on one core; everything else
/// goes through the lane injector, whose FIFO preserves priority order.
fn dispatch_dag_node(
    state_ptr: usize,
    i: usize,
    core: &Arc<PoolCore>,
    stats: &Arc<PoolStats>,
    latch: &Arc<CountdownLatch>,
    prefer_local: bool,
) {
    // SAFETY: see `DagState` — the caller of `run_dag` keeps the state
    // alive until the latch opens, which requires this node to finish.
    let state = unsafe { &*(state_ptr as *const DagState<'static>) };
    let io_hint = state.io_lane.get(i).copied().unwrap_or(false);
    let io = io_hint && core.io_injector.is_some();
    stats.dag_dispatches.fetch_add(1, Ordering::Relaxed);
    if io {
        stats.io_dispatches.fetch_add(1, Ordering::Relaxed);
        let depth = state.io_ready.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        stats.io_ready_peak.fetch_max(depth, Ordering::Relaxed);
        arp_trace::counter("io-lane-depth", depth as f64);
        if arp_metrics::enabled() {
            metrics::nodes_dispatched().inc();
            metrics::io_ready_depth().add(1);
        }
    } else {
        let depth = state.ready.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        stats.dag_ready_peak.fetch_max(depth, Ordering::Relaxed);
        // The counter track samples the same value the peak statistic takes
        // its max over, so the exported track's peak equals `dag_ready_peak`.
        arp_trace::counter("ready-queue-depth", depth as f64);
        if arp_metrics::enabled() {
            metrics::nodes_dispatched().inc();
            metrics::ready_depth().add(1);
        }
    }
    // Stamped at enqueue so the span (and the queue-wait histogram) can
    // separate how long the node sat in the channel from its execute time,
    // without paying for a clock read when both layers are disabled.
    let queued_at = if arp_trace::enabled() || arp_metrics::enabled() {
        Some(Instant::now())
    } else {
        None
    };

    let core_clone = core.clone();
    let stats_clone = stats.clone();
    let latch_clone = latch.clone();
    let job: Job = Box::new(move || {
        struct Guard(Arc<CountdownLatch>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.count_down();
            }
        }
        // Declared first so it drops last: the latch must not open until
        // every access to the shared state is over.
        let _guard = Guard(latch_clone.clone());
        let latch = latch_clone;
        let state = unsafe { &*(state_ptr as *const DagState<'static>) };
        let metrics_on = arp_metrics::enabled();
        if io {
            let depth = state.io_ready.fetch_sub(1, Ordering::Relaxed) as f64 - 1.0;
            arp_trace::counter("io-lane-depth", depth);
            if metrics_on {
                metrics::io_ready_depth().sub(1);
            }
        } else {
            let depth = state.ready.fetch_sub(1, Ordering::Relaxed) as f64 - 1.0;
            arp_trace::counter("ready-queue-depth", depth);
            if metrics_on {
                metrics::ready_depth().sub(1);
            }
        }
        if metrics_on {
            if let Some(t) = queued_at {
                let waited = t.elapsed().as_nanos() as u64;
                // The aggregate histogram keeps its historical meaning;
                // the labeled family splits the same samples by lane.
                metrics::queue_wait().record(waited);
                metrics::lane_queue_wait(io).record(waited);
            }
        }
        // After a panic the remaining nodes still cascade (so the latch
        // fully counts down) but their bodies are skipped.
        if !state.panicked.load(Ordering::Relaxed) {
            if let Some(task) = state.slots[i].lock().take() {
                // The span covers only the task body (closed before
                // successors are unlocked); the task itself annotates
                // pipeline attribution over this default name.
                let _span = arp_trace::begin_queued(arp_trace::Cat::DagNode, queued_at);
                arp_trace::annotate(|a| {
                    a.name = if io {
                        format!("node-{i} [io]")
                    } else {
                        format!("node-{i}")
                    };
                    // Mark nodes that ran on the other lane's worker so the
                    // trace shows where stealing actually rebalanced load.
                    if current_job_cross_lane() {
                        a.name.push_str(" [stolen]");
                    }
                });
                let exec_start = metrics_on.then(Instant::now);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    let msg = panic_message(&*payload);
                    arp_diag::error(|| format!("dag node {i} panicked: {msg}"));
                    state.panic_msg.lock().get_or_insert(msg);
                    state.panicked.store(true, Ordering::Relaxed);
                    stats_clone.panics_caught.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(t0) = exec_start {
                    metrics::execute_time().record(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        metrics::nodes_completed().inc();
        let mut unlocked: Vec<usize> = state.succs[i]
            .iter()
            .copied()
            .filter(|&s| state.pending[s].fetch_sub(1, Ordering::AcqRel) == 1)
            .collect();
        order_ready(&mut unlocked, &state.priority);
        // The highest-priority successor stays on this worker's deque
        // (popped next, LIFO); the rest go through the injectors.
        let mut first = true;
        for s in unlocked {
            dispatch_dag_node(state_ptr, s, &core_clone, &stats_clone, &latch, first);
            first = false;
        }
    });
    core.push(Tagged { job, io }, prefer_local);
}

/// The process-wide shared pool (held at module scope so the sizing hook
/// below can tell whether it has been built yet).
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The I/O-lane width the global pool will be built with. `usize::MAX`
/// means "unset" and resolves to [`default_io_threads`].
static GLOBAL_IO_THREADS: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sets the I/O-lane width the global pool is created with (`0` disables
/// the lane). Returns `true` when the setting will take effect — i.e. the
/// global pool has not been built yet. Call before the first
/// [`ThreadPool::global`] use; a later call is a silent no-op apart from
/// the `false` return.
pub fn configure_global_io_threads(io_threads: usize) -> bool {
    GLOBAL_IO_THREADS.store(io_threads, Ordering::Relaxed);
    GLOBAL.get().is_none()
}

/// Spawns one worker owning `worker_deque`. `io` selects the worker's lane
/// (its accounting, its victim order, and the thread-name prefix the trace
/// layer keys its timeline lanes on); `index` is lane-local.
fn spawn_worker(
    name: String,
    io: bool,
    index: usize,
    core: Arc<PoolCore>,
    worker_deque: deque::Worker<Tagged>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let gauge_idx = if io { core.threads + index } else { index };
            let depth_gauge = core.depth_gauges[gauge_idx];
            LOCAL.with(|l| {
                *l.borrow_mut() = Some(LocalWorker {
                    core: core.clone(),
                    worker: worker_deque,
                    io,
                    depth_gauge,
                });
            });
            loop {
                // Snapshot the wake generation *before* scanning: a push
                // racing the scan bumps it, so `idle_wait` returns at once
                // and the scan reruns instead of sleeping through work.
                let gen = core.wake_gen.load(Ordering::Acquire);
                if let Some(t) = core.pop_local().or_else(|| core.find_work(io, index)) {
                    // Jobs carry their own completion/panic accounting;
                    // a panicking job must not kill the worker.
                    core.execute(t, io, false);
                    continue;
                }
                if core.shutdown.load(Ordering::Acquire) {
                    break;
                }
                core.idle_wait(gen);
            }
            LOCAL.with(|l| *l.borrow_mut() = None);
        })
        .expect("failed to spawn pool worker")
}

impl ThreadPool {
    /// Creates a pool with `threads` compute workers (at least 1) and the
    /// default I/O lane ([`default_io_threads`]).
    pub fn new(threads: usize) -> Self {
        Self::with_io(threads, default_io_threads(threads.max(1)))
    }

    /// Creates a pool with `threads` compute workers (at least 1) and
    /// `io_threads` I/O-lane workers. `io_threads == 0` disables the lane
    /// entirely: every DAG node runs on the compute workers exactly as if
    /// no lane hints were given.
    pub fn with_io(threads: usize, io_threads: usize) -> Self {
        let threads = threads.max(1);
        let stats = Arc::new(PoolStats::default());
        let compute_deques: Vec<deque::Worker<Tagged>> =
            (0..threads).map(|_| deque::Worker::new_lifo()).collect();
        let io_deques: Vec<deque::Worker<Tagged>> =
            (0..io_threads).map(|_| deque::Worker::new_lifo()).collect();
        // Gauges resolve once here; pools sharing a worker name (common in
        // tests) share the gauge, which is fine for observability.
        let depth_gauges = (0..threads)
            .map(|k| metrics::deque_depth(&format!("arp-par-{k}")))
            .chain((0..io_threads).map(|k| metrics::deque_depth(&format!("arp-io-{k}"))))
            .collect();
        let core = Arc::new(PoolCore {
            injector: deque::Injector::new(),
            io_injector: (io_threads > 0).then(deque::Injector::new),
            stealers: compute_deques.iter().map(|w| w.stealer()).collect(),
            io_stealers: io_deques.iter().map(|w| w.stealer()).collect(),
            depth_gauges,
            cross_io_active: AtomicUsize::new(0),
            threads,
            shutdown: AtomicBool::new(false),
            wake_gen: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            idle_lock: parking_lot::Mutex::new(()),
            idle_cv: parking_lot::Condvar::new(),
            stats: stats.clone(),
        });
        let workers = compute_deques
            .into_iter()
            .enumerate()
            .map(|(k, w)| spawn_worker(format!("arp-par-{k}"), false, k, core.clone(), w))
            .collect();
        let io_workers = io_deques
            .into_iter()
            .enumerate()
            .map(|(k, w)| spawn_worker(format!("arp-io-{k}"), true, k, core.clone(), w))
            .collect();
        ThreadPool {
            core,
            workers,
            io_workers,
            threads,
            io_threads,
            stats,
        }
    }

    /// Snapshot of the pool's observability counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs_on_workers: self.stats.jobs_on_workers.load(Ordering::Relaxed),
            jobs_helped: self.stats.jobs_helped.load(Ordering::Relaxed),
            loops_completed: self.stats.loops_completed.load(Ordering::Relaxed),
            panics_caught: self.stats.panics_caught.load(Ordering::Relaxed),
            dag_dispatches: self.stats.dag_dispatches.load(Ordering::Relaxed),
            dag_ready_peak: self.stats.dag_ready_peak.load(Ordering::Relaxed),
            dags_completed: self.stats.dags_completed.load(Ordering::Relaxed),
            io_jobs_on_workers: self.stats.io_jobs_on_workers.load(Ordering::Relaxed),
            io_dispatches: self.stats.io_dispatches.load(Ordering::Relaxed),
            io_ready_peak: self.stats.io_ready_peak.load(Ordering::Relaxed),
            steal_attempts: self.stats.steal_attempts.load(Ordering::Relaxed),
            steals_compute: self.stats.steals_compute.load(Ordering::Relaxed),
            steals_io: self.stats.steals_io.load(Ordering::Relaxed),
            cross_lane_steals: self.stats.cross_lane_steals.load(Ordering::Relaxed),
        }
    }

    /// Runs queued jobs until `latch` opens. This is the cooperative wait
    /// that makes nesting safe: if all workers are blocked inside outer
    /// constructs, the blocked threads themselves drain the queues.
    ///
    /// A helper with nothing to run sleeps on the pool's idle condvar (a
    /// pushed job wakes it immediately), and the [`IDLE_WAIT`] timeout
    /// bounds how long latch-opening can go unnoticed. Helpers only ever
    /// drain compute-lane queues — an I/O-tagged job could block the
    /// helping thread indefinitely, stalling the very construct it is
    /// trying to finish.
    fn help_until_open(&self, latch: &CountdownLatch) {
        while !latch.is_open() {
            let gen = self.core.wake_gen.load(Ordering::Acquire);
            match self.core.find_help_work() {
                Some(t) => self.core.execute(t, false, true),
                None => self.core.idle_wait(gen),
            }
        }
    }

    /// The process-wide shared pool, sized to the machine's parallelism
    /// (I/O lane per [`configure_global_io_threads`], defaulting to
    /// [`default_io_threads`]).
    pub fn global() -> &'static ThreadPool {
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            let io = match GLOBAL_IO_THREADS.load(Ordering::Relaxed) {
                usize::MAX => default_io_threads(n),
                configured => configured,
            };
            ThreadPool::with_io(n, io)
        })
    }

    /// Number of compute worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of I/O-lane worker threads (0 = lane disabled).
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Live per-worker deque depth, `(worker name, queued jobs)` for every
    /// compute and I/O worker. Reads the work-stealing deques directly
    /// (the same `Stealer::len` the victim-selection loop uses), so it
    /// works with metrics recording disabled and never blocks a worker.
    pub fn deque_depths(&self) -> Vec<(String, usize)> {
        let mut out = Vec::with_capacity(self.threads + self.io_threads);
        for (k, s) in self.core.stealers.iter().enumerate() {
            out.push((format!("arp-par-{k}"), s.len()));
        }
        for (k, s) in self.core.io_stealers.iter().enumerate() {
            out.push((format!("arp-io-{k}"), s.len()));
        }
        out
    }

    /// Executes `body(i)` for every `i` in `range`, in parallel, returning
    /// when all iterations are complete.
    ///
    /// The calling thread participates; pool workers join as they become
    /// free. Panics in any iteration are collected and re-raised on the
    /// caller after every in-flight chunk has finished.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        if range.is_empty() {
            return;
        }
        let state = ForState {
            cursor: AtomicUsize::new(0),
            start: range.start,
            end: range.end,
            threads: self.threads,
            schedule,
            body: &body,
            panicked: AtomicBool::new(false),
            panic_msg: parking_lot::Mutex::new(None),
        };

        // Helpers get a raw pointer to the stack-held state. Soundness: the
        // latch guarantees every helper has returned before `state` (and the
        // borrowed `body`) go out of scope — including on the panic path,
        // because the latch decrement lives in a drop guard inside the job.
        let helpers = self.threads.min(self.end_helpers(range.end - range.start));
        let latch = Arc::new(CountdownLatch::new(helpers));
        let state_ptr = &state as *const ForState<'_> as usize;
        for _ in 0..helpers {
            let latch = latch.clone();
            let job: Job = Box::new(move || {
                struct Guard(Arc<CountdownLatch>);
                impl Drop for Guard {
                    fn drop(&mut self) {
                        self.0.count_down();
                    }
                }
                let _guard = Guard(latch);
                // SAFETY: the caller blocks on the latch before the state is
                // dropped, so the pointee outlives this access.
                let state = unsafe { &*(state_ptr as *const ForState<'static>) };
                state.drive();
            });
            // Helper jobs go through the injector (not a worker's own
            // deque) so any free worker can claim one immediately.
            self.core.push(Tagged { job, io: false }, false);
        }

        state.drive();
        self.help_until_open(&latch);
        self.stats.loops_completed.fetch_add(1, Ordering::Relaxed);

        if state.panicked.load(Ordering::Relaxed) {
            match state.panic_msg.lock().take() {
                Some(msg) => panic!("a parallel_for iteration panicked: {msg}"),
                None => panic!("a parallel_for iteration panicked"),
            }
        }
    }

    /// Caps helper count so tiny loops don't enqueue useless jobs.
    fn end_helpers(&self, n: usize) -> usize {
        n.saturating_sub(1).min(self.threads)
    }

    /// Runs a set of heterogeneous tasks to completion (OpenMP
    /// `task`/`taskwait`). See [`ThreadPool::scope`] for the borrowing
    /// variant.
    pub fn run_tasks(&self, tasks: Vec<BorrowedTask<'_>>) {
        if tasks.is_empty() {
            return;
        }
        let slots: Vec<parking_lot::Mutex<Option<BorrowedTask<'_>>>> = tasks
            .into_iter()
            .map(|t| parking_lot::Mutex::new(Some(t)))
            .collect();
        self.parallel_for(0..slots.len(), Schedule::Dynamic(1), |i| {
            if let Some(task) = slots[i].lock().take() {
                task();
            }
        });
    }

    /// Runs a set of interdependent tasks, starting each one the moment its
    /// predecessors complete — a dependency-counting DAG scheduler.
    ///
    /// `preds[i]` lists the task indices that must finish before task `i`
    /// may start. Roots are dispatched immediately; every completing task
    /// decrements its successors' pending counters and dispatches those
    /// that reach zero. The calling thread participates (it drains the
    /// pool queue while waiting), so `run_dag` completes even when every
    /// worker is busy, and tasks may themselves use nested pool
    /// constructs.
    ///
    /// Panics if the graph references an out-of-range index, depends on
    /// itself, or contains a cycle; a panic inside a task is re-raised on
    /// the caller after the whole graph has drained.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(4);
    /// let order = parking_lot::Mutex::new(Vec::new());
    /// // diamond: 0 -> {1, 2} -> 3
    /// pool.run_dag(
    ///     (0..4).map(|i| {
    ///         let order = &order;
    ///         Box::new(move || order.lock().push(i)) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0], vec![0], vec![1, 2]],
    /// );
    /// let order = order.into_inner();
    /// assert_eq!(order[0], 0);
    /// assert_eq!(order[3], 3);
    /// ```
    pub fn run_dag<'env>(&self, tasks: Vec<BorrowedTask<'env>>, preds: &[Vec<usize>]) {
        self.run_dag_prioritized(tasks, preds, &[]);
    }

    /// As [`ThreadPool::run_dag`], with an explicit dispatch priority per
    /// task — the fair-scheduling knob for graphs that union several
    /// independent subgraphs (such as a multi-event batch).
    ///
    /// Whenever several tasks become ready at the same moment (the initial
    /// roots, or siblings unlocked by one completion), they are enqueued
    /// highest priority first and the FIFO worker channel preserves that
    /// order. Passing each task's critical-path weight (its longest
    /// remaining path to an exit) yields critical-path list scheduling:
    /// long chains start early and short subgraphs fill the idle tails
    /// instead of being starved behind one giant subgraph's unordered
    /// nodes. An empty slice means submission (index) order; otherwise
    /// `priority` must have one entry per task.
    ///
    /// Priorities influence only the dispatch *order*, never correctness:
    /// dependencies are enforced exactly as in [`ThreadPool::run_dag`].
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(2);
    /// let done = std::sync::atomic::AtomicUsize::new(0);
    /// // Two independent chains; the heavier one gets priority.
    /// pool.run_dag_prioritized(
    ///     (0..4).map(|_| {
    ///         let done = &done;
    ///         Box::new(move || {
    ///             done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    ///         }) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0], vec![], vec![2]],
    ///     &[10, 10, 3, 3],
    /// );
    /// assert_eq!(done.load(std::sync::atomic::Ordering::Relaxed), 4);
    /// ```
    pub fn run_dag_prioritized<'env>(
        &self,
        tasks: Vec<BorrowedTask<'env>>,
        preds: &[Vec<usize>],
        priority: &[u64],
    ) {
        self.run_dag_lanes(tasks, preds, priority, &[]);
    }

    /// As [`ThreadPool::run_dag_prioritized`], with a per-task lane hint:
    /// tasks whose `io_lane` entry is `true` are dispatched to the pool's
    /// I/O workers (when the lane exists), so a task blocked on disk never
    /// occupies a compute worker. An empty slice — or a pool built with
    /// `io_threads == 0` — routes every task to the compute lane;
    /// otherwise `io_lane` must have one entry per task.
    ///
    /// Lane hints influence only *where* a task runs, never correctness:
    /// dependency counting, priority ordering, and panic accounting are
    /// exactly as in [`ThreadPool::run_dag_prioritized`], so lane-on and
    /// lane-off runs of the same graph produce identical results.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::with_io(2, 1);
    /// let sum = std::sync::atomic::AtomicUsize::new(0);
    /// // 0 (compute) -> 1 (I/O): the write lands on an `arp-io-*` thread.
    /// pool.run_dag_lanes(
    ///     (0..2).map(|i| {
    ///         let sum = &sum;
    ///         Box::new(move || {
    ///             sum.fetch_add(i + 1, std::sync::atomic::Ordering::Relaxed);
    ///         }) as Box<dyn FnOnce() + Send>
    ///     }).collect(),
    ///     &[vec![], vec![0]],
    ///     &[],
    ///     &[false, true],
    /// );
    /// assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 3);
    /// assert!(pool.stats().io_dispatches >= 1);
    /// ```
    pub fn run_dag_lanes<'env>(
        &self,
        tasks: Vec<BorrowedTask<'env>>,
        preds: &[Vec<usize>],
        priority: &[u64],
        io_lane: &[bool],
    ) {
        let n = tasks.len();
        assert!(
            io_lane.is_empty() || io_lane.len() == n,
            "run_dag: one lane hint per task (or none)"
        );
        assert_eq!(preds.len(), n, "run_dag: one predecessor list per task");
        assert!(
            priority.is_empty() || priority.len() == n,
            "run_dag: one priority per task (or none)"
        );
        if n == 0 {
            return;
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                assert!(p < n, "run_dag: task {i} depends on out-of-range {p}");
                assert_ne!(p, i, "run_dag: task {i} depends on itself");
                succs[p].push(i);
                indegree[i] += 1;
            }
        }
        // Kahn's algorithm up front: a cyclic graph would deadlock the
        // latch, so refuse it loudly instead.
        {
            let mut remaining = indegree.clone();
            let mut queue: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
            let mut seen = 0;
            while let Some(i) = queue.pop() {
                seen += 1;
                for &s in &succs[i] {
                    remaining[s] -= 1;
                    if remaining[s] == 0 {
                        queue.push(s);
                    }
                }
            }
            assert_eq!(seen, n, "run_dag: dependency graph contains a cycle");
        }

        let state = DagState {
            slots: tasks
                .into_iter()
                .map(|t| parking_lot::Mutex::new(Some(t)))
                .collect(),
            succs,
            pending: indegree.iter().map(|&d| AtomicUsize::new(d)).collect(),
            priority: priority.to_vec(),
            io_lane: io_lane.to_vec(),
            ready: AtomicUsize::new(0),
            io_ready: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_msg: parking_lot::Mutex::new(None),
        };
        let latch = Arc::new(CountdownLatch::new(n));
        let state_ptr = &state as *const DagState<'_> as usize;
        let mut roots: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        order_ready(&mut roots, priority);
        for i in roots {
            // Roots all go through the injectors: the caller is about to
            // help, not to run its own deque as a worker.
            dispatch_dag_node(state_ptr, i, &self.core, &self.stats, &latch, false);
        }
        self.help_until_open(&latch);
        self.stats.dags_completed.fetch_add(1, Ordering::Relaxed);
        if state.panicked.load(Ordering::Relaxed) {
            match state.panic_msg.lock().take() {
                Some(msg) => panic!("a dag task panicked: {msg}"),
                None => panic!("a dag task panicked"),
            }
        }
    }

    /// Parallel map: applies `f` to every index and collects the results in
    /// index order. Built on [`ThreadPool::parallel_for`], so the calling
    /// thread participates and nesting is safe.
    pub fn parallel_map<T, F>(&self, n: usize, schedule: Schedule, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<parking_lot::Mutex<Option<T>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        self.parallel_for(0..n, schedule, |i| {
            *slots[i].lock() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("parallel_for visits every index"))
            .collect()
    }

    /// Parallel reduction: maps every index through `f` and folds the
    /// results with `combine` (which must be associative; the combination
    /// order is unspecified). Returns `identity` for an empty range.
    pub fn parallel_reduce<T, F, C>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        f: F,
        combine: C,
    ) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        let acc = parking_lot::Mutex::new(identity);
        self.parallel_for(0..n, schedule, |i| {
            let v = f(i);
            let mut guard = acc.lock();
            let current = guard.clone();
            *guard = combine(current, v);
        });
        acc.into_inner()
    }

    /// Spawns tasks that may borrow from the enclosing scope and waits for
    /// all of them — the runtime's `#pragma omp task` + `taskwait`.
    ///
    /// ```
    /// let pool = arp_par::ThreadPool::new(4);
    /// let mut a = 0u64;
    /// let mut b = 0u64;
    /// pool.scope(|s| {
    ///     s.spawn(|| a = 1);
    ///     s.spawn(|| b = 2);
    /// });
    /// assert_eq!((a, b), (1, 2));
    /// ```
    pub fn scope<'env, F>(&self, build: F)
    where
        F: FnOnce(&mut TaskScope<'env>),
    {
        let mut scope = TaskScope { tasks: Vec::new() };
        build(&mut scope);
        self.run_tasks(scope.tasks);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers exit when a full scan finds nothing after the flag is
        // raised, so any straggler jobs still drain first.
        self.core.shutdown.store(true, Ordering::Release);
        self.core.wake();
        for w in self.workers.drain(..).chain(self.io_workers.drain(..)) {
            let _ = w.join();
        }
    }
}

/// Collects tasks for [`ThreadPool::scope`].
pub struct TaskScope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> TaskScope<'env> {
    /// Registers a task. Tasks run when the scope closure returns; there are
    /// no ordering guarantees between them.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(f));
    }

    /// Number of tasks registered so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if no tasks registered.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let p = pool();
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic(1),
            Schedule::Dynamic(7),
            Schedule::Guided(1),
            Schedule::Guided(4),
        ] {
            let n = 1000;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            p.parallel_for(0..n, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} under {schedule:?}");
            }
        }
    }

    #[test]
    fn parallel_for_nonzero_start() {
        let p = pool();
        let sum = AtomicU64::new(0);
        p.parallel_for(10..20, Schedule::Dynamic(3), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20).sum::<u64>());
    }

    #[test]
    fn empty_range_is_noop() {
        let p = pool();
        p.parallel_for(5..5, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn single_iteration_runs_on_caller() {
        let p = pool();
        let hit = AtomicUsize::new(0);
        p.parallel_for(0..1, Schedule::Static, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn matches_sequential_result() {
        let p = pool();
        let n = 10_000;
        let par: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        p.parallel_for(0..n, Schedule::Guided(8), |i| {
            par[i].store((i * i) as u64 % 97, Ordering::Relaxed);
        });
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            assert_eq!(par[i].load(Ordering::Relaxed), (i * i) as u64 % 97);
        }
    }

    #[test]
    fn uses_multiple_threads() {
        use std::collections::HashSet;
        let p = ThreadPool::new(4);
        let ids = parking_lot::Mutex::new(HashSet::new());
        p.parallel_for(0..64, Schedule::Dynamic(1), |_| {
            // Make work slow enough that helpers join in.
            std::thread::sleep(std::time::Duration::from_millis(2));
            ids.lock().insert(std::thread::current().id());
        });
        assert!(
            ids.lock().len() >= 2,
            "only {} thread(s) used",
            ids.lock().len()
        );
    }

    #[test]
    fn nested_parallel_for_completes() {
        let p = pool();
        let total = AtomicUsize::new(0);
        p.parallel_for(0..8, Schedule::Dynamic(1), |_| {
            p.parallel_for(0..8, Schedule::Dynamic(1), |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let p = pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.parallel_for(0..100, Schedule::Dynamic(1), |i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let ok = AtomicUsize::new(0);
        p.parallel_for(0..10, Schedule::Static, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let p = pool();
        let mut results = vec![0u64; 5];
        {
            let chunks: Vec<&mut u64> = results.iter_mut().collect();
            p.scope(|s| {
                for (k, slot) in chunks.into_iter().enumerate() {
                    s.spawn(move || *slot = (k as u64 + 1) * 11);
                }
            });
        }
        assert_eq!(results, vec![11, 22, 33, 44, 55]);
    }

    #[test]
    fn empty_scope_is_noop() {
        let p = pool();
        p.scope(|_| {});
    }

    #[test]
    fn scope_len_tracks_spawns() {
        let p = pool();
        p.scope(|s| {
            assert!(s.is_empty());
            s.spawn(|| {});
            s.spawn(|| {});
            assert_eq!(s.len(), 2);
        });
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let g1 = ThreadPool::global();
        let g2 = ThreadPool::global();
        assert!(std::ptr::eq(g1, g2));
        let sum = AtomicU64::new(0);
        g1.parallel_for(0..100, Schedule::Static, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn single_thread_pool_works() {
        let p = ThreadPool::new(1);
        let sum = AtomicU64::new(0);
        p.parallel_for(0..50, Schedule::Guided(2), |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1225);
    }

    #[test]
    fn zero_thread_request_clamped() {
        let p = ThreadPool::new(0);
        assert_eq!(p.threads(), 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let p = pool();
        let out = p.parallel_map(100, Schedule::Dynamic(3), |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        assert!(p.parallel_map(0, Schedule::Static, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_with_non_copy_results() {
        let p = pool();
        let out = p.parallel_map(20, Schedule::Guided(1), |i| format!("item-{i}"));
        assert_eq!(out[7], "item-7");
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn parallel_reduce_sums() {
        let p = pool();
        let total = p.parallel_reduce(1000, Schedule::Static, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, (0..1000u64).sum::<u64>());
        // Empty range yields the identity.
        let empty = p.parallel_reduce(0, Schedule::Static, 42u64, |i| i as u64, |a, b| a + b);
        assert_eq!(empty, 42);
    }

    #[test]
    fn parallel_reduce_max() {
        let p = pool();
        let values: Vec<i64> = (0..500).map(|i| ((i * 7919) % 1001) as i64 - 500).collect();
        let max = p.parallel_reduce(
            values.len(),
            Schedule::Dynamic(16),
            i64::MIN,
            |i| values[i],
            i64::max,
        );
        assert_eq!(max, *values.iter().max().unwrap());
    }

    #[test]
    fn stats_track_work() {
        let p = ThreadPool::new(2);
        let before = p.stats();
        assert_eq!(before.loops_completed, 0);
        p.parallel_for(0..64, Schedule::Dynamic(1), |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        let after = p.stats();
        assert_eq!(after.loops_completed, 1);
        assert!(after.jobs_on_workers + after.jobs_helped >= 1);
        assert_eq!(after.panics_caught, 0);
    }

    #[test]
    fn stats_count_panics() {
        let p = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.parallel_for(0..8, Schedule::Dynamic(1), |i| {
                // Make workers likely to pick up chunks before the panic.
                std::thread::sleep(std::time::Duration::from_micros(100));
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The construct completed (with a panic), counters finite & sane.
        let s = p.stats();
        assert_eq!(s.loops_completed, 1);
    }

    /// Boxes a closure as a borrowed task.
    fn task<'env, F: FnOnce() + Send + 'env>(f: F) -> BorrowedTask<'env> {
        Box::new(f)
    }

    #[test]
    fn run_dag_respects_dependencies() {
        let p = pool();
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 4 independent (a small diamond).
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2], vec![]];
        for _ in 0..50 {
            let log = parking_lot::Mutex::new(Vec::new());
            let log_ref = &log;
            p.run_dag(
                (0..5)
                    .map(|i| task(move || log_ref.lock().push(i)))
                    .collect(),
                &preds,
            );
            let log = log.into_inner();
            assert_eq!(log.len(), 5);
            let pos = |v: usize| log.iter().position(|&x| x == v).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    fn run_dag_chain_runs_in_order() {
        let p = pool();
        let n = 64;
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let log = parking_lot::Mutex::new(Vec::new());
        let log_ref = &log;
        p.run_dag(
            (0..n)
                .map(|i| task(move || log_ref.lock().push(i)))
                .collect(),
            &preds,
        );
        assert_eq!(log.into_inner(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn order_ready_sorts_by_priority_then_index() {
        let mut v = vec![3, 0, 2, 1];
        order_ready(&mut v, &[]);
        assert_eq!(v, vec![0, 1, 2, 3], "no priorities: index order");
        let mut v = vec![0, 1, 2, 3];
        order_ready(&mut v, &[5, 9, 9, 1]);
        assert_eq!(v, vec![1, 2, 0, 3], "descending priority, index ties");
    }

    #[test]
    fn run_dag_prioritized_is_correct_under_any_priorities() {
        let p = pool();
        // Same diamond as `run_dag_respects_dependencies`.
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2], vec![]];
        for prio in [
            vec![0u64, 0, 0, 0, 0],
            vec![4, 3, 2, 1, 9],
            vec![1, 2, 3, 4, 5],
        ] {
            let log = parking_lot::Mutex::new(Vec::new());
            let log_ref = &log;
            p.run_dag_prioritized(
                (0..5)
                    .map(|i| task(move || log_ref.lock().push(i)))
                    .collect(),
                &preds,
                &prio,
            );
            let log = log.into_inner();
            assert_eq!(log.len(), 5, "priorities {prio:?}");
            let pos = |v: usize| log.iter().position(|&x| x == v).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    #[test]
    #[should_panic(expected = "one priority per task")]
    fn run_dag_prioritized_rejects_wrong_priority_len() {
        let p = pool();
        p.run_dag_prioritized(vec![task(|| {}), task(|| {})], &[vec![], vec![]], &[1]);
    }

    #[test]
    fn run_dag_empty_and_independent() {
        let p = pool();
        p.run_dag(Vec::new(), &[]);
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        let preds = vec![Vec::new(); 100];
        p.run_dag(
            (0..100u64)
                .map(|i| {
                    task(move || {
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn run_dag_tasks_may_nest_parallel_for() {
        let p = pool();
        let total = AtomicUsize::new(0);
        let preds = vec![vec![], vec![0], vec![0]];
        p.run_dag(
            (0..3)
                .map(|_| {
                    task(|| {
                        p.parallel_for(0..32, Schedule::Dynamic(4), |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(total.load(Ordering::Relaxed), 96);
    }

    #[test]
    fn run_dag_panic_propagates_and_pool_survives() {
        let p = pool();
        let ran_after = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag(
                vec![
                    task(|| panic!("node boom")),
                    task(|| {
                        ran_after.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
                &[vec![], vec![0]],
            );
        }));
        assert!(result.is_err());
        // The dependent node was skipped, not run against broken inputs.
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
        // And the pool is still usable.
        let ok = AtomicUsize::new(0);
        p.run_dag(
            vec![task(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            })],
            &[vec![]],
        );
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_dag_rejects_cycles() {
        let p = pool();
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag(vec![task(|| {}), task(|| {})], &[vec![1], vec![0]]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_dag_stats_count_dispatches() {
        let p = ThreadPool::new(2);
        let before = p.stats();
        let preds = vec![vec![], vec![], vec![0, 1]];
        p.run_dag((0..3).map(|_| task(|| {})).collect(), &preds);
        let delta = p.stats().delta_since(&before);
        assert_eq!(delta.dag_dispatches, 3);
        assert_eq!(delta.dags_completed, 1);
        // Two roots were ready at once at dispatch time.
        assert!(delta.dag_ready_peak >= 1);
        assert_eq!(delta.panics_caught, 0);
    }

    #[test]
    fn default_io_threads_floor_and_scaling() {
        assert_eq!(default_io_threads(1), 2);
        assert_eq!(default_io_threads(4), 2);
        assert_eq!(default_io_threads(8), 2);
        assert_eq!(default_io_threads(16), 4);
        assert_eq!(default_io_threads(64), 16);
    }

    #[test]
    fn io_nodes_route_to_io_lane() {
        let p = ThreadPool::with_io(2, 2);
        let names = parking_lot::Mutex::new(Vec::<(usize, String)>::new());
        let names_ref = &names;
        // 0 (compute) -> {1 io, 2 compute} -> 3 (io)
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let lanes = [false, true, false, true];
        p.run_dag_lanes(
            (0..4)
                .map(|i| {
                    task(move || {
                        let name = std::thread::current().name().unwrap_or("").to_string();
                        names_ref.lock().push((i, name));
                    })
                })
                .collect(),
            &preds,
            &[],
            &lanes,
        );
        let names = names.into_inner();
        assert_eq!(names.len(), 4);
        // Lanes are affinity hints, not placements: any pool thread (or
        // the helping caller) may have executed any node. What must hold
        // is the routing accounting.
        for (_, name) in &names {
            assert!(
                name.starts_with("arp-par-") || name.starts_with("arp-io-") || !name.is_empty(),
                "node ran on an unexpected thread {name:?}"
            );
        }
        let s = p.stats();
        assert_eq!(s.io_dispatches, 2);
        assert!(s.io_ready_peak >= 1);
    }

    #[test]
    fn idle_compute_workers_steal_io_nodes() {
        // One I/O worker, a pile of independent I/O nodes that each block
        // for a while: the two idle compute workers must steal from the
        // I/O lane instead of watching it drain serially.
        let p = ThreadPool::with_io(2, 1);
        let n = 16;
        let names = parking_lot::Mutex::new(Vec::<String>::new());
        let names_ref = &names;
        p.run_dag_lanes(
            (0..n)
                .map(|_| {
                    task(move || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        let name = std::thread::current().name().unwrap_or("").to_string();
                        names_ref.lock().push(name);
                    })
                })
                .collect(),
            &vec![Vec::new(); n],
            &[],
            &vec![true; n],
        );
        let names = names.into_inner();
        assert_eq!(names.len(), n);
        let s = p.stats();
        assert_eq!(s.io_dispatches, n as u64);
        assert!(
            s.steals_io >= 1,
            "expected compute workers to steal I/O nodes, stats: {s:?}"
        );
        assert!(s.cross_lane_steals >= 1);
        assert!(s.steal_attempts >= s.steals_io);
        assert!(
            names.iter().any(|name| name.starts_with("arp-par-")),
            "no I/O node ever ran on a compute worker: {names:?}"
        );
    }

    #[test]
    fn io_workers_steal_compute_nodes() {
        // Inverse direction: one compute worker, two I/O workers, only
        // compute-tagged nodes. The I/O workers must not sit idle.
        let p = ThreadPool::with_io(1, 2);
        let n = 16;
        let names = parking_lot::Mutex::new(Vec::<String>::new());
        let names_ref = &names;
        p.run_dag_lanes(
            (0..n)
                .map(|_| {
                    task(move || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        let name = std::thread::current().name().unwrap_or("").to_string();
                        names_ref.lock().push(name);
                    })
                })
                .collect(),
            &vec![Vec::new(); n],
            &[],
            &vec![false; n],
        );
        let names = names.into_inner();
        assert_eq!(names.len(), n);
        let s = p.stats();
        assert!(
            s.steals_compute >= 1,
            "expected I/O workers to steal compute nodes, stats: {s:?}"
        );
        assert!(
            names.iter().any(|name| name.starts_with("arp-io-")),
            "no compute node ever ran on an I/O worker: {names:?}"
        );
    }

    #[test]
    fn single_compute_worker_never_cross_steals_io() {
        // With one compute worker the cross-lane cap is zero: blocking
        // I/O must never occupy the only compute thread.
        let p = ThreadPool::with_io(1, 1);
        let names = parking_lot::Mutex::new(Vec::<String>::new());
        let names_ref = &names;
        let n = 8;
        p.run_dag_lanes(
            (0..n)
                .map(|_| {
                    task(move || {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        let name = std::thread::current().name().unwrap_or("").to_string();
                        names_ref.lock().push(name);
                    })
                })
                .collect(),
            &vec![Vec::new(); n],
            &[],
            &vec![true; n],
        );
        let names = names.into_inner();
        assert_eq!(names.len(), n);
        assert!(
            names.iter().all(|name| !name.starts_with("arp-par-")),
            "a lone compute worker took blocking I/O work: {names:?}"
        );
    }

    #[test]
    fn lane_hints_are_inert_when_lane_disabled() {
        let p = ThreadPool::with_io(2, 0);
        assert_eq!(p.io_threads(), 0);
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        p.run_dag_lanes(
            (0..4)
                .map(|i| {
                    task(move || {
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect(),
            &[vec![], vec![0], vec![0], vec![1, 2]],
            &[],
            &[false, true, false, true],
        );
        assert_eq!(sum.load(Ordering::Relaxed), 6);
        let s = p.stats();
        assert_eq!(s.io_dispatches, 0, "disabled lane must route to compute");
        assert_eq!(s.io_jobs_on_workers, 0);
        assert_eq!(s.dag_dispatches, 4);
    }

    #[test]
    #[should_panic(expected = "one lane hint per task")]
    fn run_dag_lanes_rejects_wrong_hint_len() {
        let p = pool();
        p.run_dag_lanes(
            vec![task(|| {}), task(|| {})],
            &[vec![], vec![]],
            &[],
            &[true],
        );
    }

    #[test]
    fn io_node_panic_propagates_and_pool_survives() {
        let p = ThreadPool::with_io(2, 1);
        let ran_after = AtomicUsize::new(0);
        let ran_ref = &ran_after;
        let result = catch_unwind(AssertUnwindSafe(|| {
            p.run_dag_lanes(
                vec![
                    task(|| panic!("io node boom")),
                    task(move || {
                        ran_ref.fetch_add(1, Ordering::Relaxed);
                    }),
                ],
                &[vec![], vec![0]],
                &[],
                &[true, false],
            );
        }));
        assert!(result.is_err());
        assert_eq!(ran_after.load(Ordering::Relaxed), 0);
        assert_eq!(p.stats().panics_caught, 1);
        // The pool (both lanes) is still usable.
        let ok = AtomicUsize::new(0);
        let ok_ref = &ok;
        p.run_dag_lanes(
            vec![task(move || {
                ok_ref.fetch_add(1, Ordering::Relaxed);
            })],
            &[vec![]],
            &[],
            &[true],
        );
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn io_nodes_may_nest_parallel_for() {
        let pool = ThreadPool::with_io(2, 1);
        let p = &pool;
        let total = AtomicUsize::new(0);
        let total_ref = &total;
        p.run_dag_lanes(
            (0..3)
                .map(|_| {
                    task(move || {
                        p.parallel_for(0..32, Schedule::Dynamic(4), |_| {
                            total_ref.fetch_add(1, Ordering::Relaxed);
                        });
                    })
                })
                .collect(),
            &[vec![], vec![0], vec![0]],
            &[],
            &[true, true, false],
        );
        assert_eq!(total.load(Ordering::Relaxed), 96);
    }

    #[test]
    fn help_accounting_covers_every_job() {
        // A 1-compute-thread pool with a long dependency chain forces the
        // caller to help; the blocking-receive wait must not lose or
        // double-count any job.
        let p = ThreadPool::with_io(1, 0);
        let before = p.stats();
        let n = 32;
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let hits = AtomicUsize::new(0);
        let hits_ref = &hits;
        p.run_dag(
            (0..n)
                .map(|_| {
                    task(move || {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                        hits_ref.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect(),
            &preds,
        );
        assert_eq!(hits.load(Ordering::Relaxed), n);
        let delta = p.stats().delta_since(&before);
        assert_eq!(delta.dag_dispatches, n as u64);
        assert_eq!(
            delta.jobs_on_workers + delta.jobs_helped,
            n as u64,
            "every job accounted to exactly one of worker/helper"
        );
        assert_eq!(delta.panics_caught, 0);
    }

    #[test]
    fn stress_many_small_loops() {
        let p = pool();
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            p.parallel_for(0..round % 17, Schedule::Dynamic(1), |_| {
                sum.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), round % 17);
        }
    }
}
