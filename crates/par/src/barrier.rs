//! A reusable cyclic barrier (generation-counted), analogous to OpenMP's
//! implicit barrier at the end of a worksharing construct.

use parking_lot::{Condvar, Mutex};

struct BarrierState {
    /// Threads still expected in the current generation.
    waiting: usize,
    /// Generation counter; incremented when a generation completes.
    generation: u64,
}

/// A cyclic barrier for a fixed party of threads.
///
/// ```
/// use arp_par::CyclicBarrier;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(CyclicBarrier::new(2));
/// assert_eq!(barrier.parties(), 2);
/// let peer = {
///     let barrier = barrier.clone();
///     std::thread::spawn(move || barrier.wait())
/// };
/// // Exactly one of the two arrivals is the generation's leader.
/// let mine = barrier.wait();
/// let theirs = peer.join().unwrap();
/// assert!(mine ^ theirs);
/// ```
pub struct CyclicBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

impl CyclicBarrier {
    /// Creates a barrier for `parties` threads (must be >= 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        CyclicBarrier {
            parties,
            state: Mutex::new(BarrierState {
                waiting: parties,
                generation: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Blocks until all parties have arrived. Returns `true` for exactly one
    /// "leader" thread per generation (the last to arrive).
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.waiting -= 1;
        if st.waiting == 0 {
            // Last arrival: open the next generation and release everyone.
            st.waiting = self.parties;
            st.generation += 1;
            self.cond.notify_all();
            true
        } else {
            while st.generation == gen {
                self.cond.wait(&mut st);
            }
            false
        }
    }

    /// Number of parties the barrier synchronizes.
    pub fn parties(&self) -> usize {
        self.parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = CyclicBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let parties = 4;
        let b = Arc::new(CyclicBarrier::new(parties));
        let leaders = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..parties)
            .map(|_| {
                let b = b.clone();
                let leaders = leaders.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn phases_are_synchronized() {
        // No thread may enter phase k+1 until all have finished phase k.
        let parties = 3;
        let b = Arc::new(CyclicBarrier::new(parties));
        let phase_counts = Arc::new([
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ]);
        let threads: Vec<_> = (0..parties)
            .map(|_| {
                let b = b.clone();
                let pc = phase_counts.clone();
                std::thread::spawn(move || {
                    for phase in 0..3 {
                        pc[phase].fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, every thread must have bumped
                        // this phase's counter.
                        assert_eq!(pc[phase].load(Ordering::SeqCst), parties);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn zero_parties_rejected() {
        CyclicBarrier::new(0);
    }
}
