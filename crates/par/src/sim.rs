//! Deterministic scheduling simulator.
//!
//! Computes the makespan a set of measured work-unit durations *would* have
//! on `P` processors under each scheduling policy. Used by the pipeline's
//! simulated-time executor to evaluate parallel performance on hosts with
//! fewer cores than the paper's testbed: units execute (and are timed) for
//! real, sequentially; the schedule is then replayed in virtual time.

use crate::pool::Schedule;
use std::time::Duration;

/// Earliest-available-thread simulation of a chunked parallel loop.
///
/// Mirrors the claim logic of [`crate::ThreadPool::parallel_for`]: whichever
/// virtual thread is free earliest claims the next chunk; chunk sizes follow
/// the schedule. Returns the virtual wall time.
pub fn loop_makespan(durations: &[Duration], threads: usize, schedule: Schedule) -> Duration {
    let n = durations.len();
    if n == 0 {
        return Duration::ZERO;
    }
    let threads = threads.max(1);
    let mut avail = vec![Duration::ZERO; threads];
    let mut next = 0usize;
    while next < n {
        // Earliest-available virtual thread claims the next chunk.
        let (tid, _) = avail
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("threads >= 1");
        let chunk = match schedule {
            Schedule::Static => n.div_ceil(threads).max(1),
            Schedule::Dynamic(c) => c.max(1),
            Schedule::Guided(min) => ((n - next) / (2 * threads)).max(min.max(1)),
        }
        .min(n - next);
        let work: Duration = durations[next..next + chunk].iter().sum();
        avail[tid] += work;
        next += chunk;
    }
    avail.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Greedy list-scheduling of heterogeneous tasks on `threads` processors
/// (OpenMP task pool): each task goes to the earliest-available thread.
pub fn tasks_makespan(durations: &[Duration], threads: usize) -> Duration {
    let threads = threads.max(1);
    let mut avail = vec![Duration::ZERO; threads];
    for &d in durations {
        let slot = avail.iter_mut().min().expect("threads >= 1");
        *slot += d;
    }
    avail.into_iter().max().unwrap_or(Duration::ZERO)
}

/// Critical-path-priority list scheduling of a task DAG on `threads`
/// processors.
///
/// Replays in virtual time the schedule [`crate::ThreadPool::run_dag`]
/// would produce: a node becomes ready when its last predecessor finishes;
/// among ready nodes the one with the longest remaining path to an exit
/// runs first, on the thread that frees up earliest. Returns the virtual
/// wall time of the whole graph.
///
/// `preds[i]` lists the nodes that must finish before node `i` starts.
/// Panics on out-of-range indices, self-dependencies, or cycles.
///
/// ```
/// use std::time::Duration;
/// let ms = Duration::from_millis;
/// // Diamond 0 -> {1, 2} -> 3: the branches overlap on two threads.
/// let durations = [ms(2), ms(4), ms(6), ms(1)];
/// let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
/// assert_eq!(arp_par::dag_makespan(&durations, &preds, 2), ms(9));
/// assert_eq!(arp_par::dag_makespan(&durations, &preds, 1), ms(13));
/// ```
pub fn dag_makespan(durations: &[Duration], preds: &[Vec<usize>], threads: usize) -> Duration {
    let n = durations.len();
    assert_eq!(
        preds.len(),
        n,
        "dag_makespan: one predecessor list per node"
    );
    if n == 0 {
        return Duration::ZERO;
    }
    let threads = threads.max(1);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            assert!(p < n && p != i, "dag_makespan: bad predecessor {p} of {i}");
            succs[p].push(i);
        }
    }

    // Topological order (Kahn), needed to compute ranks and detect cycles.
    let mut remaining: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut topo: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut head = 0;
    while head < topo.len() {
        let i = topo[head];
        head += 1;
        for &s in &succs[i] {
            remaining[s] -= 1;
            if remaining[s] == 0 {
                topo.push(s);
            }
        }
    }
    assert_eq!(
        topo.len(),
        n,
        "dag_makespan: dependency graph contains a cycle"
    );

    // Downward rank: longest path from the node (inclusive) to any exit.
    let mut rank = vec![Duration::ZERO; n];
    for &i in topo.iter().rev() {
        let down = succs[i]
            .iter()
            .map(|&s| rank[s])
            .max()
            .unwrap_or(Duration::ZERO);
        rank[i] = durations[i] + down;
    }

    // List scheduling: repeatedly take the highest-rank node whose
    // predecessors are all scheduled, and place it on the earliest-free
    // thread, no earlier than its predecessors' finish times.
    let mut finish = vec![Duration::ZERO; n];
    let mut scheduled = vec![false; n];
    let mut pending: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut avail = vec![Duration::ZERO; threads];
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
    let mut makespan = Duration::ZERO;
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|&(_, &i)| (rank[i], std::cmp::Reverse(i)))
        .map(|(pos, _)| pos)
    {
        let i = ready.swap_remove(pos);
        let node_ready = preds[i]
            .iter()
            .map(|&p| finish[p])
            .max()
            .unwrap_or(Duration::ZERO);
        let t = avail.iter_mut().min().expect("threads >= 1");
        let start = (*t).max(node_ready);
        finish[i] = start + durations[i];
        *t = finish[i];
        makespan = makespan.max(finish[i]);
        scheduled[i] = true;
        for &s in &succs[i] {
            pending[s] -= 1;
            if pending[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert!(scheduled.iter().all(|&s| s));
    makespan
}

/// As [`dag_makespan`], with the pool's two-lane work-stealing topology:
/// the virtual machine has `threads` compute workers *and* `io_threads`
/// I/O workers, and — mirroring the stealing scheduler of
/// [`crate::ThreadPool::run_dag_lanes`] — **any** worker may run **any**
/// node. The `io_lane` hint is an affinity, not a partition: a node goes
/// to the worker that frees up earliest, and only when workers tie does
/// the node prefer its own lane. An idle I/O worker therefore steals
/// compute nodes and vice versa, so the lane-on schedule is effectively
/// `threads + io_threads` workers with placement bias and can never be
/// starved the way a strict two-queue split is.
///
/// `io_threads == 0` or an empty `io_lane` slice degenerates to the
/// single-lane [`dag_makespan`] (the lane-off schedule); otherwise
/// `io_lane` must have one entry per node. All-`false` hints with a live
/// lane equal `dag_makespan(durations, preds, threads + io_threads)` —
/// the extra workers simply steal.
///
/// ```
/// use std::time::Duration;
/// let ms = Duration::from_millis;
/// // Two independent pairs of (compute, I/O) work on one compute thread:
/// // single-lane they serialize to 20ms. With a 1-thread I/O lane the
/// // idle I/O worker *steals* the second chain's compute root, so both
/// // chains run concurrently: compute 0..5ms, I/O 5..10ms.
/// let durations = [ms(5), ms(5), ms(5), ms(5)];
/// let preds = vec![vec![], vec![0], vec![], vec![2]];
/// let io_lane = [false, true, false, true];
/// assert_eq!(arp_par::dag_makespan(&durations, &preds, 1), ms(20));
/// assert_eq!(
///     arp_par::dag_makespan_lanes(&durations, &preds, 1, 1, &io_lane),
///     ms(10)
/// );
/// ```
pub fn dag_makespan_lanes(
    durations: &[Duration],
    preds: &[Vec<usize>],
    threads: usize,
    io_threads: usize,
    io_lane: &[bool],
) -> Duration {
    if io_threads == 0 || io_lane.is_empty() {
        return dag_makespan(durations, preds, threads);
    }
    let n = durations.len();
    assert_eq!(
        preds.len(),
        n,
        "dag_makespan_lanes: one predecessor list per node"
    );
    assert_eq!(
        io_lane.len(),
        n,
        "dag_makespan_lanes: one lane hint per node"
    );
    if n == 0 {
        return Duration::ZERO;
    }
    let threads = threads.max(1);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            assert!(
                p < n && p != i,
                "dag_makespan_lanes: bad predecessor {p} of {i}"
            );
            succs[p].push(i);
        }
    }

    // Topological order (Kahn), needed to compute ranks and detect cycles.
    let mut remaining: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut topo: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut head = 0;
    while head < topo.len() {
        let i = topo[head];
        head += 1;
        for &s in &succs[i] {
            remaining[s] -= 1;
            if remaining[s] == 0 {
                topo.push(s);
            }
        }
    }
    assert_eq!(
        topo.len(),
        n,
        "dag_makespan_lanes: dependency graph contains a cycle"
    );

    // Downward rank: longest path from the node (inclusive) to any exit.
    let mut rank = vec![Duration::ZERO; n];
    for &i in topo.iter().rev() {
        let down = succs[i]
            .iter()
            .map(|&s| rank[s])
            .max()
            .unwrap_or(Duration::ZERO);
        rank[i] = durations[i] + down;
    }

    // List scheduling as in `dag_makespan`, except over the union of both
    // lanes' workers (indices `0..threads` are compute, the rest I/O):
    // work stealing makes every worker a candidate for every node, and
    // the lane hint only breaks availability ties in favor of the node's
    // affine lane — the victim-order bias of the real scheduler.
    let mut finish = vec![Duration::ZERO; n];
    let mut pending: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut avail = vec![Duration::ZERO; threads + io_threads];
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
    let mut makespan = Duration::ZERO;
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|&(_, &i)| (rank[i], std::cmp::Reverse(i)))
        .map(|(pos, _)| pos)
    {
        let i = ready.swap_remove(pos);
        let node_ready = preds[i]
            .iter()
            .map(|&p| finish[p])
            .max()
            .unwrap_or(Duration::ZERO);
        let (w, _) = avail
            .iter()
            .enumerate()
            .min_by_key(|&(w, &t)| (t, (w >= threads) != io_lane[i], w))
            .expect("at least one worker");
        let start = avail[w].max(node_ready);
        finish[i] = start + durations[i];
        avail[w] = finish[i];
        makespan = makespan.max(finish[i]);
        for &s in &succs[i] {
            pending[s] -= 1;
            if pending[s] == 0 {
                ready.push(s);
            }
        }
    }
    makespan
}

/// As [`super_dag_makespan`], with the two-lane work-stealing topology of
/// [`dag_makespan_lanes`]: `io_lane[g]` tags graph `g`'s nodes (one entry
/// per node, or an empty table to disable the lane). The union is
/// flattened with per-graph offsets exactly as in [`super_dag_makespan`].
pub fn super_dag_makespan_lanes(
    durations: &[Vec<Duration>],
    preds: &[Vec<Vec<usize>>],
    threads: usize,
    io_threads: usize,
    io_lane: &[Vec<bool>],
) -> Duration {
    assert_eq!(
        durations.len(),
        preds.len(),
        "super_dag_makespan_lanes: one predecessor table per graph"
    );
    assert!(
        io_lane.is_empty() || io_lane.len() == durations.len(),
        "super_dag_makespan_lanes: one lane table per graph (or none)"
    );
    let mut flat_durations = Vec::new();
    let mut flat_preds = Vec::new();
    let mut flat_lanes = Vec::new();
    for (g, (ds, ps)) in durations.iter().zip(preds).enumerate() {
        assert_eq!(
            ds.len(),
            ps.len(),
            "super_dag_makespan_lanes: one predecessor list per node"
        );
        let offset = flat_durations.len();
        flat_durations.extend_from_slice(ds);
        flat_preds.extend(
            ps.iter()
                .map(|nodes| nodes.iter().map(|&p| p + offset).collect::<Vec<_>>()),
        );
        if let Some(lanes) = io_lane.get(g) {
            assert_eq!(
                lanes.len(),
                ds.len(),
                "super_dag_makespan_lanes: one lane hint per node"
            );
            flat_lanes.extend_from_slice(lanes);
        }
    }
    if io_lane.is_empty() {
        flat_lanes.clear();
    }
    dag_makespan_lanes(
        &flat_durations,
        &flat_preds,
        threads,
        io_threads,
        &flat_lanes,
    )
}

/// Predicted makespan of a *super-graph*: the disjoint union of several
/// independent task DAGs scheduled together on one `threads`-processor
/// pool.
///
/// `durations[g]` and `preds[g]` describe graph `g` exactly as in
/// [`dag_makespan`] (predecessor indices are local to the graph); no edges
/// are added between graphs. The union is flattened with per-graph index
/// offsets and scheduled as one critical-path-priority list schedule, which
/// is how the batch executor submits a multi-event super-DAG to
/// [`crate::ThreadPool::run_dag`]. Scheduling the union can never be slower
/// than running the graphs back to back, and is strictly faster whenever
/// one graph's idle tail can absorb another graph's nodes.
///
/// ```
/// use std::time::Duration;
/// let ms = Duration::from_millis;
/// // Two independent 2-node chains on 2 threads: run back to back they
/// // cost 5ms + 5ms; scheduled as one union the chains overlap fully.
/// let durations = vec![vec![ms(3), ms(2)], vec![ms(4), ms(1)]];
/// let preds = vec![vec![vec![], vec![0]], vec![vec![], vec![0]]];
/// assert_eq!(arp_par::super_dag_makespan(&durations, &preds, 2), ms(5));
/// assert_eq!(arp_par::super_dag_makespan(&durations, &preds, 1), ms(10));
/// ```
pub fn super_dag_makespan(
    durations: &[Vec<Duration>],
    preds: &[Vec<Vec<usize>>],
    threads: usize,
) -> Duration {
    assert_eq!(
        durations.len(),
        preds.len(),
        "super_dag_makespan: one predecessor table per graph"
    );
    let mut flat_durations = Vec::new();
    let mut flat_preds = Vec::new();
    for (ds, ps) in durations.iter().zip(preds) {
        assert_eq!(
            ds.len(),
            ps.len(),
            "super_dag_makespan: one predecessor list per node"
        );
        let offset = flat_durations.len();
        flat_durations.extend_from_slice(ds);
        flat_preds.extend(
            ps.iter()
                .map(|nodes| nodes.iter().map(|&p| p + offset).collect::<Vec<_>>()),
        );
    }
    dag_makespan(&flat_durations, &flat_preds, threads)
}

/// Scales selected node durations for a what-if replay: every node with
/// `select[g][i] == true` has its duration divided by `speedup`; all other
/// nodes keep their recorded time. An empty `select` table scales nothing.
///
/// This is the input half of the Coz-style virtual-speedup question "what
/// if kernel K were `speedup`× faster?": the caller marks K's nodes and
/// replays the schedule on the scaled durations.
pub fn scale_super_durations(
    durations: &[Vec<Duration>],
    select: &[Vec<bool>],
    speedup: f64,
) -> Vec<Vec<Duration>> {
    assert!(
        speedup > 0.0 && speedup.is_finite(),
        "scale_super_durations: speedup must be positive and finite"
    );
    assert!(
        select.is_empty() || select.len() == durations.len(),
        "scale_super_durations: one selection table per graph (or none)"
    );
    durations
        .iter()
        .enumerate()
        .map(|(g, ds)| {
            let Some(sel) = select.get(g) else {
                return ds.clone();
            };
            assert_eq!(
                sel.len(),
                ds.len(),
                "scale_super_durations: one selection flag per node"
            );
            ds.iter()
                .zip(sel)
                .map(|(&d, &hit)| if hit { d.div_f64(speedup) } else { d })
                .collect()
        })
        .collect()
}

/// What-if replay of a super-graph: the makespan [`super_dag_makespan`]
/// predicts once the selected nodes run `speedup`× faster.
///
/// Purely a composition of [`scale_super_durations`] and the deterministic
/// list-scheduling replay, so the prediction is *exactly* what rerunning
/// the simulator on pre-scaled inputs yields — the property the profile
/// validation test pins down.
///
/// ```
/// use std::time::Duration;
/// let ms = Duration::from_millis;
/// // One two-node chain; halving the first node saves exactly 2ms.
/// let durations = vec![vec![ms(4), ms(3)]];
/// let preds = vec![vec![vec![], vec![0]]];
/// let select = vec![vec![true, false]];
/// assert_eq!(
///     arp_par::super_dag_makespan_scaled(&durations, &preds, 2, &select, 2.0),
///     ms(5)
/// );
/// ```
pub fn super_dag_makespan_scaled(
    durations: &[Vec<Duration>],
    preds: &[Vec<Vec<usize>>],
    threads: usize,
    select: &[Vec<bool>],
    speedup: f64,
) -> Duration {
    let scaled = scale_super_durations(durations, select, speedup);
    super_dag_makespan(&scaled, preds, threads)
}

/// As [`super_dag_makespan_scaled`], on the two-lane stealing topology of
/// [`super_dag_makespan_lanes`].
pub fn super_dag_makespan_lanes_scaled(
    durations: &[Vec<Duration>],
    preds: &[Vec<Vec<usize>>],
    threads: usize,
    io_threads: usize,
    io_lane: &[Vec<bool>],
    select: &[Vec<bool>],
    speedup: f64,
) -> Duration {
    let scaled = scale_super_durations(durations, select, speedup);
    super_dag_makespan_lanes(&scaled, preds, threads, io_threads, io_lane)
}

/// Makespan of a loop whose units spend fraction `serial_fraction` of their
/// time on a shared serial resource (the disk, in this pipeline).
///
/// Roofline bound: each thread executes its assigned units in full
/// (compute + I/O inline), but the shared resource serves one unit at a
/// time, so the loop can finish no earlier than the larger of the CPU
/// schedule and the serialized resource total. For uniform units this
/// yields the classic `speedup = min(P, 1/β)` plateau that limits the
/// pipeline's I/O-heavy stages.
pub fn resource_bounded_makespan(
    durations: &[Duration],
    serial_fraction: f64,
    threads: usize,
    schedule: Schedule,
) -> Duration {
    let beta = serial_fraction.clamp(0.0, 1.0);
    let serial_total: Duration = durations.iter().map(|d| d.mul_f64(beta)).sum();
    let cpu = loop_makespan(durations, threads, schedule);
    cpu.max(serial_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_loop_is_zero() {
        assert_eq!(loop_makespan(&[], 4, Schedule::Static), Duration::ZERO);
    }

    #[test]
    fn single_thread_is_sum() {
        let d = vec![ms(3), ms(5), ms(2)];
        assert_eq!(loop_makespan(&d, 1, Schedule::Dynamic(1)), ms(10));
        assert_eq!(tasks_makespan(&d, 1), ms(10));
    }

    #[test]
    fn uniform_units_scale_linearly() {
        let d = vec![ms(10); 8];
        for sched in [Schedule::Static, Schedule::Dynamic(1), Schedule::Guided(1)] {
            assert_eq!(loop_makespan(&d, 8, sched), ms(10), "{sched:?}");
            assert_eq!(loop_makespan(&d, 4, sched), ms(20), "{sched:?}");
            assert_eq!(loop_makespan(&d, 2, sched), ms(40), "{sched:?}");
        }
    }

    #[test]
    fn makespan_bounds_hold() {
        let d: Vec<Duration> = (1..=20).map(|i| ms(i * 3 % 17 + 1)).collect();
        let sum: Duration = d.iter().sum();
        let max = *d.iter().max().unwrap();
        for threads in [1usize, 2, 4, 8] {
            for sched in [Schedule::Static, Schedule::Dynamic(2), Schedule::Guided(1)] {
                let m = loop_makespan(&d, threads, sched);
                assert!(m <= sum, "{threads} {sched:?}");
                assert!(m >= max, "{threads} {sched:?}");
                assert!(m >= sum / threads as u32, "{threads} {sched:?}");
            }
        }
    }

    #[test]
    fn dynamic_beats_static_on_skewed_work() {
        // One giant unit first: static lumps it with others in a big chunk,
        // dynamic lets the other threads take the small units.
        let mut d = vec![ms(100)];
        d.extend(std::iter::repeat_n(ms(1), 15));
        let stat = loop_makespan(&d, 4, Schedule::Static);
        let dyn1 = loop_makespan(&d, 4, Schedule::Dynamic(1));
        assert!(dyn1 <= stat, "dynamic {dyn1:?} vs static {stat:?}");
        assert_eq!(dyn1, ms(100)); // bounded by the giant unit
    }

    #[test]
    fn tasks_greedy_schedule() {
        // 3 tasks of 5,4,3 on 2 threads: t1={5}, t2={4,3} -> 7
        assert_eq!(tasks_makespan(&[ms(5), ms(4), ms(3)], 2), ms(7));
        // plenty of threads: max task
        assert_eq!(tasks_makespan(&[ms(5), ms(4), ms(3)], 8), ms(5));
        assert_eq!(tasks_makespan(&[], 4), Duration::ZERO);
    }

    #[test]
    fn resource_bound_caps_io_loops() {
        let d = vec![ms(10); 8];
        // Pure compute: scales to 8 threads.
        let free = resource_bounded_makespan(&d, 0.0, 8, Schedule::Static);
        assert_eq!(free, ms(10));
        // Fully serial resource: no scaling at all.
        let serial = resource_bounded_makespan(&d, 1.0, 8, Schedule::Static);
        assert_eq!(serial, ms(80));
        // Half serial: bounded by 40ms of disk time (speedup capped at 2).
        let half = resource_bounded_makespan(&d, 0.5, 8, Schedule::Static);
        assert_eq!(half, ms(40));
        // On one thread the loop takes the full sequential sum regardless
        // of the disk fraction.
        let one = resource_bounded_makespan(&d, 0.5, 1, Schedule::Static);
        assert_eq!(one, ms(80));
        // speedup = min(P, 1/beta) for uniform units: at beta=0.25, P=8
        // the plateau is 4x.
        let quarter = resource_bounded_makespan(&d, 0.25, 8, Schedule::Static);
        assert_eq!(quarter, ms(20));
    }

    #[test]
    fn dag_chain_is_sequential() {
        let d = vec![ms(3), ms(5), ms(2)];
        let preds = vec![vec![], vec![0], vec![1]];
        for threads in [1, 4, 16] {
            assert_eq!(dag_makespan(&d, &preds, threads), ms(10));
        }
    }

    #[test]
    fn dag_independent_nodes_pack_like_tasks() {
        let d = vec![ms(5), ms(4), ms(3)];
        let preds = vec![vec![]; 3];
        assert_eq!(dag_makespan(&d, &preds, 2), tasks_makespan(&d, 2));
        assert_eq!(dag_makespan(&d, &preds, 8), ms(5));
    }

    #[test]
    fn dag_diamond_overlaps_branches() {
        // 0 (2ms) -> {1 (4ms), 2 (6ms)} -> 3 (1ms): branches overlap on
        // two threads, so 2 + 6 + 1 = 9ms instead of the 13ms serial sum.
        let d = vec![ms(2), ms(4), ms(6), ms(1)];
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        assert_eq!(dag_makespan(&d, &preds, 2), ms(9));
        assert_eq!(dag_makespan(&d, &preds, 1), ms(13));
    }

    #[test]
    fn dag_makespan_bounds_hold() {
        let d: Vec<Duration> = (1..=12).map(|i| ms(i * 5 % 11 + 1)).collect();
        // Layered graph: node i depends on i-3 (three independent chains
        // braided by a shared head).
        let preds: Vec<Vec<usize>> = (0..12)
            .map(|i| if i < 3 { vec![] } else { vec![i - 3] })
            .collect();
        let sum: Duration = d.iter().sum();
        // Critical path: the heaviest of the three chains.
        let chain = |start: usize| -> Duration { (0..4).map(|k| d[start + 3 * k]).sum() };
        let cp = chain(0).max(chain(1)).max(chain(2));
        for threads in [1usize, 2, 3, 8] {
            let m = dag_makespan(&d, &preds, threads);
            assert!(m <= sum, "{threads}");
            assert!(m >= cp, "{threads}");
            assert!(m >= sum / threads as u32, "{threads}");
        }
        // Enough threads: exactly the critical path.
        assert_eq!(dag_makespan(&d, &preds, 3), cp);
    }

    #[test]
    fn dag_empty_is_zero() {
        assert_eq!(dag_makespan(&[], &[], 4), Duration::ZERO);
    }

    #[test]
    fn super_dag_union_never_beats_fewer_constraints() {
        // Three chains of different lengths: the union on T threads is at
        // most the back-to-back sum and at least the longest chain.
        let chains: Vec<Vec<Duration>> =
            vec![vec![ms(8), ms(4), ms(2)], vec![ms(1), ms(1)], vec![ms(5)]];
        let preds: Vec<Vec<Vec<usize>>> = chains
            .iter()
            .map(|c| {
                (0..c.len())
                    .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
                    .collect()
            })
            .collect();
        let per_graph: Vec<Duration> = chains.iter().map(|c| c.iter().sum()).collect();
        let back_to_back: Duration = per_graph.iter().sum();
        let longest = *per_graph.iter().max().unwrap();
        for threads in [1usize, 2, 4] {
            let m = super_dag_makespan(&chains, &preds, threads);
            assert!(m <= back_to_back, "{threads}");
            assert!(m >= longest, "{threads}");
        }
        // One thread: no overlap is possible, the union is the sum.
        assert_eq!(super_dag_makespan(&chains, &preds, 1), back_to_back);
        // Plenty of threads: every chain runs concurrently.
        assert_eq!(super_dag_makespan(&chains, &preds, 4), longest);
    }

    #[test]
    fn super_dag_of_empty_and_zero_graphs() {
        assert_eq!(super_dag_makespan(&[], &[], 4), Duration::ZERO);
        assert_eq!(
            super_dag_makespan(&[vec![], vec![ms(3)]], &[vec![], vec![vec![]]], 2),
            ms(3)
        );
    }

    #[test]
    fn lanes_off_matches_single_lane_schedule() {
        let d: Vec<Duration> = (1..=10).map(|i| ms(i * 7 % 13 + 1)).collect();
        let preds: Vec<Vec<usize>> = (0..10)
            .map(|i| if i < 2 { vec![] } else { vec![i - 2] })
            .collect();
        let lanes: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        for threads in [1usize, 2, 4] {
            let base = dag_makespan(&d, &preds, threads);
            // io_threads == 0 and empty hints both mean "lane off".
            assert_eq!(dag_makespan_lanes(&d, &preds, threads, 0, &lanes), base);
            assert_eq!(dag_makespan_lanes(&d, &preds, threads, 2, &[]), base);
            // All-compute hints with a live lane equal the single-lane
            // schedule on the *combined* worker count: the otherwise-idle
            // I/O workers steal compute nodes.
            assert_eq!(
                dag_makespan_lanes(&d, &preds, threads, 2, &[false; 10]),
                dag_makespan(&d, &preds, threads + 2)
            );
        }
    }

    #[test]
    fn stealing_lane_never_loses_to_lane_off() {
        // The stealing replay schedules on threads + io_threads workers
        // with affinity bias, so lane-on must not fall behind the lane-off
        // schedule on the same compute width — the strict-partition
        // pathology this model replaced.
        let d: Vec<Duration> = (1..=18).map(|i| ms(i * 5 % 9 + 1)).collect();
        let preds: Vec<Vec<usize>> = (0..18)
            .map(|i| if i < 3 { vec![] } else { vec![i - 3] })
            .collect();
        let lanes: Vec<bool> = (0..18).map(|i| i % 2 == 0).collect();
        for threads in [1usize, 2, 4, 8] {
            for io in [1usize, 2, 4] {
                let on = dag_makespan_lanes(&d, &preds, threads, io, &lanes);
                let off = dag_makespan(&d, &preds, threads);
                assert!(
                    on <= off,
                    "lane-on {on:?} beat by lane-off {off:?} at {threads}+{io}"
                );
            }
        }
    }

    #[test]
    fn io_lane_overlaps_disk_with_compute() {
        // Two independent compute -> io chains on one compute thread:
        // lane-off serializes everything to 20ms. With a 1-wide I/O lane
        // the idle I/O worker *steals* the second chain's compute root, so
        // the chains overlap fully: compute 0..5ms, I/O 5..10ms.
        let d = vec![ms(5); 4];
        let preds = vec![vec![], vec![0], vec![], vec![2]];
        let lanes = [false, true, false, true];
        assert_eq!(dag_makespan(&d, &preds, 1), ms(20));
        assert_eq!(dag_makespan_lanes(&d, &preds, 1, 1, &lanes), ms(10));
        // Wider lanes can't improve on the critical path (one chain).
        assert_eq!(dag_makespan_lanes(&d, &preds, 2, 2, &lanes), ms(10));
    }

    #[test]
    fn super_dag_lanes_flatten_like_union() {
        let chains: Vec<Vec<Duration>> = vec![vec![ms(3), ms(2)], vec![ms(4), ms(1)]];
        let preds: Vec<Vec<Vec<usize>>> = vec![vec![vec![], vec![0]], vec![vec![], vec![0]]];
        let lanes: Vec<Vec<bool>> = vec![vec![false, true], vec![false, true]];
        // Lane off reproduces the plain union.
        assert_eq!(
            super_dag_makespan_lanes(&chains, &preds, 2, 0, &lanes),
            super_dag_makespan(&chains, &preds, 2)
        );
        // With a lane the result can only improve on one compute thread.
        assert!(
            super_dag_makespan_lanes(&chains, &preds, 1, 1, &lanes)
                <= super_dag_makespan(&chains, &preds, 1)
        );
    }

    #[test]
    fn scaled_replay_matches_rerun_on_scaled_inputs() {
        // The what-if prediction is *defined* as the replay of pre-scaled
        // durations, so the two must agree exactly for any selection.
        let chains: Vec<Vec<Duration>> =
            vec![vec![ms(8), ms(4), ms(2)], vec![ms(6), ms(6)], vec![ms(5)]];
        let preds: Vec<Vec<Vec<usize>>> = chains
            .iter()
            .map(|c| {
                (0..c.len())
                    .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
                    .collect()
            })
            .collect();
        let select: Vec<Vec<bool>> = chains
            .iter()
            .map(|c| (0..c.len()).map(|i| i % 2 == 0).collect())
            .collect();
        for speedup in [1.0, 1.5, 2.0, 4.0] {
            for threads in [1usize, 2, 4] {
                let predicted =
                    super_dag_makespan_scaled(&chains, &preds, threads, &select, speedup);
                let rerun = super_dag_makespan(
                    &scale_super_durations(&chains, &select, speedup),
                    &preds,
                    threads,
                );
                assert_eq!(predicted, rerun, "speedup {speedup} threads {threads}");
            }
        }
    }

    #[test]
    fn scaling_nothing_or_by_one_is_identity() {
        let chains: Vec<Vec<Duration>> = vec![vec![ms(3), ms(2)], vec![ms(4)]];
        let preds: Vec<Vec<Vec<usize>>> = vec![vec![vec![], vec![0]], vec![vec![]]];
        let all: Vec<Vec<bool>> = chains.iter().map(|c| vec![true; c.len()]).collect();
        let base = super_dag_makespan(&chains, &preds, 2);
        assert_eq!(
            super_dag_makespan_scaled(&chains, &preds, 2, &[], 4.0),
            base
        );
        assert_eq!(
            super_dag_makespan_scaled(&chains, &preds, 2, &all, 1.0),
            base
        );
        // Scaling everything by 2 halves every duration, so the whole
        // schedule shrinks by exactly 2.
        assert_eq!(
            super_dag_makespan_scaled(&chains, &preds, 2, &all, 2.0),
            base / 2
        );
    }

    #[test]
    fn speeding_a_kernel_up_never_slows_the_batch() {
        let chains: Vec<Vec<Duration>> = vec![
            vec![ms(8), ms(4), ms(2), ms(7)],
            vec![ms(6), ms(6), ms(1)],
            vec![ms(5), ms(9)],
        ];
        let preds: Vec<Vec<Vec<usize>>> = chains
            .iter()
            .map(|c| {
                (0..c.len())
                    .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
                    .collect()
            })
            .collect();
        let select: Vec<Vec<bool>> = chains
            .iter()
            .map(|c| (0..c.len()).map(|i| i == 1).collect())
            .collect();
        let lanes: Vec<Vec<bool>> = chains
            .iter()
            .map(|c| (0..c.len()).map(|i| i % 2 == 0).collect())
            .collect();
        for threads in [1usize, 2, 4] {
            let mut last = Duration::MAX;
            for speedup in [1.0, 2.0, 4.0, 8.0] {
                let m = super_dag_makespan_scaled(&chains, &preds, threads, &select, speedup);
                assert!(m <= last, "speedup {speedup} threads {threads}");
                last = m;
                let lanes_m = super_dag_makespan_lanes_scaled(
                    &chains, &preds, threads, 2, &lanes, &select, speedup,
                );
                assert!(lanes_m <= m, "lanes at speedup {speedup} threads {threads}");
            }
        }
    }

    #[test]
    fn guided_chunks_shrink_but_cover() {
        let d = vec![ms(2); 100];
        let m = loop_makespan(&d, 4, Schedule::Guided(1));
        // Perfectly divisible work: close to ideal.
        assert!(m <= ms(2 * 100 / 4 + 8), "{m:?}");
    }
}
