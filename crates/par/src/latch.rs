//! A counting latch: blocks waiters until a preset number of completions.

use parking_lot::{Condvar, Mutex};

/// A one-shot countdown latch.
///
/// Created with a count; [`CountdownLatch::count_down`] decrements it and
/// [`CountdownLatch::wait`] blocks until it reaches zero. Used to implement
/// the `taskwait` semantics of the parallel runtime.
///
/// ```
/// use arp_par::CountdownLatch;
/// use std::sync::Arc;
///
/// let latch = Arc::new(CountdownLatch::new(2));
/// let worker = {
///     let latch = latch.clone();
///     std::thread::spawn(move || {
///         latch.count_down();
///         latch.count_down();
///     })
/// };
/// latch.wait(); // blocks until both completions are recorded
/// assert!(latch.is_open());
/// assert_eq!(latch.remaining(), 0);
/// worker.join().unwrap();
/// ```
pub struct CountdownLatch {
    remaining: Mutex<usize>,
    cond: Condvar,
}

impl CountdownLatch {
    /// Creates a latch that opens after `count` decrements.
    pub fn new(count: usize) -> Self {
        CountdownLatch {
            remaining: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Records one completion. Panics if called more times than the count.
    pub fn count_down(&self) {
        let mut rem = self.remaining.lock();
        assert!(*rem > 0, "count_down called too many times");
        *rem -= 1;
        if *rem == 0 {
            self.cond.notify_all();
        }
    }

    /// Blocks until the count reaches zero. Returns immediately if it
    /// already has.
    pub fn wait(&self) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            self.cond.wait(&mut rem);
        }
    }

    /// Waits until the count reaches zero or the timeout elapses; returns
    /// `true` when the latch is open. Used by helping waiters that must
    /// periodically check the work queue.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        let mut rem = self.remaining.lock();
        if *rem == 0 {
            return true;
        }
        self.cond.wait_for(&mut rem, timeout);
        *rem == 0
    }

    /// True when the count has reached zero.
    pub fn is_open(&self) -> bool {
        *self.remaining.lock() == 0
    }

    /// Current count (for diagnostics; racy by nature).
    pub fn remaining(&self) -> usize {
        *self.remaining.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_count_opens_immediately() {
        let l = CountdownLatch::new(0);
        l.wait(); // must not block
    }

    #[test]
    fn opens_after_counts() {
        let l = Arc::new(CountdownLatch::new(3));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || l.count_down())
            })
            .collect();
        l.wait();
        assert_eq!(l.remaining(), 0);
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn many_waiters_released() {
        let l = Arc::new(CountdownLatch::new(1));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || l.wait())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        l.count_down();
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn over_count_panics() {
        let l = CountdownLatch::new(1);
        l.count_down();
        l.count_down();
    }
}
