//! The pool's live metrics: scheduler backlog, worker occupancy, and the
//! queue-wait / execute-time distributions.
//!
//! Handles are resolved once through `OnceLock` statics, so the
//! instrumented hot paths pay one pointer load to reach an instrument and
//! the instrument's own single-relaxed-load disabled check. Naming follows
//! the Prometheus conventions the registry documents: `arp_pool_` prefix,
//! `_total` counters, `_seconds` histograms recorded in nanoseconds.

use arp_metrics::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Dispatched-but-not-yet-started DAG nodes (the pool channel backlog).
pub fn ready_depth() -> &'static Gauge {
    static H: OnceLock<&'static Gauge> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::gauge(
            "arp_pool_ready_queue_depth",
            "DAG nodes dispatched to the pool channel but not yet started.",
        )
    })
}

/// Dispatched-but-not-yet-started DAG nodes on the I/O lane.
pub fn io_ready_depth() -> &'static Gauge {
    static H: OnceLock<&'static Gauge> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::gauge(
            "arp_pool_io_ready_queue_depth",
            "DAG nodes dispatched to the I/O-lane channel but not yet started.",
        )
    })
}

/// Threads currently executing a pool job (workers and helping callers).
pub fn workers_busy() -> &'static Gauge {
    static H: OnceLock<&'static Gauge> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::gauge(
            "arp_pool_workers_busy",
            "Threads currently executing a pool job (workers plus helping callers).",
        )
    })
}

/// I/O-lane workers currently executing a pool job.
pub fn io_workers_busy() -> &'static Gauge {
    static H: OnceLock<&'static Gauge> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::gauge(
            "arp_pool_io_workers_busy",
            "I/O-lane workers currently executing a pool job.",
        )
    })
}

/// DAG nodes handed to the pool channel.
pub fn nodes_dispatched() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pool_nodes_dispatched_total",
            "DAG nodes dispatched to the pool channel.",
        )
    })
}

/// DAG nodes that finished executing.
pub fn nodes_completed() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pool_nodes_completed_total",
            "DAG nodes that finished executing (including skipped-after-panic cascades).",
        )
    })
}

/// Dispatch → start latency distribution of DAG nodes.
pub fn queue_wait() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::histogram(
            "arp_pool_queue_wait_seconds",
            "Time DAG nodes sat in the pool channel before a worker started them.",
            1e9,
        )
    })
}

/// Dispatch → start latency distribution of DAG nodes, split by lane
/// (`lane="compute"` / `lane="io"`). The same samples also feed the
/// aggregate [`queue_wait`] histogram, which keeps its historical meaning.
pub fn lane_queue_wait(io: bool) -> &'static Histogram {
    static H: OnceLock<[&'static Histogram; 2]> = OnceLock::new();
    let family = H.get_or_init(|| {
        ["compute", "io"].map(|lane| {
            arp_metrics::histogram_labeled(
                "arp_pool_lane_queue_wait_seconds",
                "Time DAG nodes sat in their lane's channel before a worker started them, by lane.",
                1e9,
                Some(("lane", lane)),
            )
        })
    });
    family[usize::from(io)]
}

/// Probes of another worker's deque or a cross-lane queue (hits and
/// misses alike).
pub fn steal_attempts() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pool_steal_attempts_total",
            "Probes of another worker's deque or a cross-lane queue (hits and misses).",
        )
    })
}

/// Jobs obtained by stealing, split by the *job's* lane tag
/// (`lane="compute"` / `lane="io"`).
pub fn steals(io: bool) -> &'static Counter {
    static H: OnceLock<[&'static Counter; 2]> = OnceLock::new();
    let family = H.get_or_init(|| {
        ["compute", "io"].map(|lane| {
            arp_metrics::counter_labeled(
                "arp_pool_steals_total",
                "Jobs obtained by stealing from a sibling deque or across lanes, by job lane.",
                Some(("lane", lane)),
            )
        })
    });
    family[usize::from(io)]
}

/// Stolen jobs executed by a worker of the *other* lane than their tag.
pub fn cross_lane_steals() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pool_cross_lane_steals_total",
            "Stolen jobs executed by a worker of the other lane than their tag.",
        )
    })
}

/// Current depth of one worker's local deque (`worker="arp-par-0"`, …).
/// Resolved once per worker at pool construction; pools that share worker
/// names (separate pools in one process) share the gauge.
pub fn deque_depth(worker: &str) -> &'static Gauge {
    arp_metrics::gauge_labeled(
        "arp_pool_deque_depth",
        "Tasks currently queued in one worker's local deque, by worker thread.",
        Some(("worker", worker)),
    )
}

/// Execute-time distribution of DAG nodes.
pub fn execute_time() -> &'static Histogram {
    static H: OnceLock<&'static Histogram> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::histogram(
            "arp_pool_execute_seconds",
            "Execution time of DAG node bodies.",
            1e9,
        )
    })
}

/// Forces registration of every pool metric, so a fresh process's
/// `arp metrics` snapshot lists the full catalog instead of only the
/// instruments some code path has already touched.
pub fn register() {
    ready_depth();
    io_ready_depth();
    workers_busy();
    io_workers_busy();
    nodes_dispatched();
    nodes_completed();
    queue_wait();
    lane_queue_wait(false);
    lane_queue_wait(true);
    steal_attempts();
    steals(false);
    steals(true);
    cross_lane_steals();
    execute_time();
    // The per-worker deque-depth gauges register lazily at pool
    // construction: their label set depends on the pool's sizing.
}
