//! Property tests: the parallel runtime matches sequential semantics for
//! arbitrary workloads, and the scheduling simulator respects its bounds.

use arp_par::{
    loop_makespan, resource_bounded_makespan, tasks_makespan, PoolStatsSnapshot, Schedule,
    ThreadPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

fn snapshot_strategy() -> impl Strategy<Value = PoolStatsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((a, b, c, d), (e, f, g), (h, i, j), (k, l, m, o))| PoolStatsSnapshot {
                jobs_on_workers: a,
                jobs_helped: b,
                loops_completed: c,
                panics_caught: d,
                dag_dispatches: e,
                dag_ready_peak: f,
                dags_completed: g,
                io_dispatches: h,
                io_jobs_on_workers: i,
                io_ready_peak: j,
                steal_attempts: k,
                steals_compute: l,
                steals_io: m,
                cross_lane_steals: o,
            },
        )
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..16).prop_map(Schedule::Dynamic),
        (1usize..8).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_for_is_a_permutation_of_sequential(
        n in 0usize..500,
        threads in 1usize..6,
        schedule in schedule_strategy(),
    ) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..n, schedule, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {}", i);
        }
        prop_assert_eq!(sum.load(Ordering::Relaxed), (0..n as u64).sum::<u64>());
    }

    #[test]
    fn scope_runs_every_task_once(
        task_count in 0usize..40,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicUsize> = (0..task_count).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for c in &counts {
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn simulated_makespan_bounds(
        durs_ms in prop::collection::vec(0u64..100, 1..80),
        threads in 1usize..16,
        schedule in schedule_strategy(),
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let sum: Duration = durs.iter().sum();
        let max = durs.iter().copied().max().unwrap_or_default();
        let m = loop_makespan(&durs, threads, schedule);
        // Fundamental scheduling bounds.
        prop_assert!(m <= sum);
        prop_assert!(m >= max);
        prop_assert!(m.as_nanos() * (threads as u128) >= sum.as_nanos());
        // One thread degenerates to the sum.
        prop_assert_eq!(loop_makespan(&durs, 1, schedule), sum);
    }

    #[test]
    fn more_threads_never_hurt_dynamic_schedules(
        durs_ms in prop::collection::vec(0u64..50, 1..60),
        threads in 1usize..8,
    ) {
        // Monotonicity holds for self-scheduling (dynamic chunk 1); static
        // chunking can have parity anomalies, so it is excluded by design.
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let a = loop_makespan(&durs, threads, Schedule::Dynamic(1));
        let b = loop_makespan(&durs, threads + 1, Schedule::Dynamic(1));
        prop_assert!(b <= a, "threads {} -> {:?}, {} -> {:?}", threads, a, threads + 1, b);
    }

    #[test]
    fn resource_bound_is_at_least_cpu_bound(
        durs_ms in prop::collection::vec(1u64..50, 1..60),
        threads in 1usize..16,
        beta in 0.0f64..1.0,
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let cpu = loop_makespan(&durs, threads, Schedule::Static);
        let bounded = resource_bounded_makespan(&durs, beta, threads, Schedule::Static);
        prop_assert!(bounded >= cpu);
        // And never more than the full sequential sum.
        let sum: Duration = durs.iter().sum();
        prop_assert!(bounded <= sum);
    }

    #[test]
    fn task_makespan_bounds(
        durs_ms in prop::collection::vec(0u64..100, 0..40),
        threads in 1usize..8,
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let sum: Duration = durs.iter().sum();
        let max = durs.iter().copied().max().unwrap_or_default();
        let m = tasks_makespan(&durs, threads);
        prop_assert!(m <= sum);
        prop_assert!(m >= max);
        // Greedy list scheduling is within 2x of any schedule's optimum
        // (Graham's bound: makespan <= sum/p + max).
        let graham = Duration::from_nanos(
            (sum.as_nanos() / threads as u128) as u64
        ) + max;
        prop_assert!(m <= graham + Duration::from_nanos(1));
    }

    #[test]
    fn delta_since_saturates_and_never_panics(
        after in snapshot_strategy(),
        before in snapshot_strategy(),
    ) {
        // `delta_since` must be total: any pair of snapshots — including
        // ones where `before` is ahead, as happens when snapshots from
        // different pools are mixed up — yields a delta without wrapping.
        let d = after.delta_since(&before);
        prop_assert_eq!(d.jobs_on_workers, after.jobs_on_workers.saturating_sub(before.jobs_on_workers));
        prop_assert_eq!(d.jobs_helped, after.jobs_helped.saturating_sub(before.jobs_helped));
        prop_assert_eq!(d.loops_completed, after.loops_completed.saturating_sub(before.loops_completed));
        prop_assert_eq!(d.panics_caught, after.panics_caught.saturating_sub(before.panics_caught));
        prop_assert_eq!(d.dag_dispatches, after.dag_dispatches.saturating_sub(before.dag_dispatches));
        prop_assert_eq!(d.dags_completed, after.dags_completed.saturating_sub(before.dags_completed));
        prop_assert_eq!(d.io_dispatches, after.io_dispatches.saturating_sub(before.io_dispatches));
        prop_assert_eq!(
            d.io_jobs_on_workers,
            after.io_jobs_on_workers.saturating_sub(before.io_jobs_on_workers)
        );
        prop_assert_eq!(d.steal_attempts, after.steal_attempts.saturating_sub(before.steal_attempts));
        prop_assert_eq!(d.steals_compute, after.steals_compute.saturating_sub(before.steals_compute));
        prop_assert_eq!(d.steals_io, after.steals_io.saturating_sub(before.steals_io));
        prop_assert_eq!(
            d.cross_lane_steals,
            after.cross_lane_steals.saturating_sub(before.cross_lane_steals)
        );
        // The ready-queue peaks are high-water marks, not counters: the
        // later observation is kept verbatim.
        prop_assert_eq!(d.dag_ready_peak, after.dag_ready_peak);
        prop_assert_eq!(d.io_ready_peak, after.io_ready_peak);
    }

    #[test]
    fn delta_since_identities(s in snapshot_strategy()) {
        // Delta against itself is all-zero except the preserved peak...
        let zero = s.delta_since(&s);
        prop_assert_eq!(zero.jobs_on_workers, 0);
        prop_assert_eq!(zero.jobs_helped, 0);
        prop_assert_eq!(zero.loops_completed, 0);
        prop_assert_eq!(zero.panics_caught, 0);
        prop_assert_eq!(zero.dag_dispatches, 0);
        prop_assert_eq!(zero.dags_completed, 0);
        prop_assert_eq!(zero.dag_ready_peak, s.dag_ready_peak);
        // ...and delta against a fresh (all-zero) baseline is the snapshot.
        let fresh = PoolStatsSnapshot {
            jobs_on_workers: 0,
            jobs_helped: 0,
            loops_completed: 0,
            panics_caught: 0,
            dag_dispatches: 0,
            dag_ready_peak: 0,
            dags_completed: 0,
            io_dispatches: 0,
            io_jobs_on_workers: 0,
            io_ready_peak: 0,
            steal_attempts: 0,
            steals_compute: 0,
            steals_io: 0,
            cross_lane_steals: 0,
        };
        prop_assert_eq!(s.delta_since(&fresh), s);
    }
}

/// Every `PoolStats` field is a monotone counter (or high-water mark): a
/// sequence of snapshots taken while another thread hammers the pool must
/// never observe any field decreasing.
#[test]
fn snapshots_are_monotone_under_concurrent_load() {
    let pool = ThreadPool::new(4);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for round in 0..40 {
                pool.parallel_for(0..64, Schedule::Dynamic(4), |_| {
                    std::hint::black_box(round);
                });
                // A tiny diamond DAG so the dag_* counters move too.
                let ran: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
                let tasks: Vec<Box<dyn FnOnce() + Send>> = ran
                    .iter()
                    .map(|c| {
                        Box::new(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect();
                pool.run_dag(tasks, &[vec![], vec![0], vec![0], vec![1, 2]]);
            }
            done.store(true, Ordering::Release);
        });

        let mut prev = pool.stats();
        while !done.load(Ordering::Acquire) {
            let cur = pool.stats();
            assert!(cur.jobs_on_workers >= prev.jobs_on_workers);
            assert!(cur.jobs_helped >= prev.jobs_helped);
            assert!(cur.loops_completed >= prev.loops_completed);
            assert!(cur.panics_caught >= prev.panics_caught);
            assert!(cur.dag_dispatches >= prev.dag_dispatches);
            assert!(cur.dag_ready_peak >= prev.dag_ready_peak);
            assert!(cur.dags_completed >= prev.dags_completed);
            // The delta against the previous poll is therefore exact, and
            // saturating subtraction never actually saturates.
            let d = cur.delta_since(&prev);
            assert_eq!(
                d.jobs_on_workers,
                cur.jobs_on_workers - prev.jobs_on_workers
            );
            assert_eq!(d.dag_dispatches, cur.dag_dispatches - prev.dag_dispatches);
            prev = cur;
            std::thread::yield_now();
        }
    });
    let end = pool.stats();
    assert!(end.loops_completed >= 40);
    assert!(end.dags_completed >= 40);
    assert_eq!(end.panics_caught, 0);
}
