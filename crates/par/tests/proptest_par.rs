//! Property tests: the parallel runtime matches sequential semantics for
//! arbitrary workloads, and the scheduling simulator respects its bounds.

use arp_par::{loop_makespan, resource_bounded_makespan, tasks_makespan, Schedule, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::Static),
        (1usize..16).prop_map(Schedule::Dynamic),
        (1usize..8).prop_map(Schedule::Guided),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_for_is_a_permutation_of_sequential(
        n in 0usize..500,
        threads in 1usize..6,
        schedule in schedule_strategy(),
    ) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..n, schedule, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {}", i);
        }
        prop_assert_eq!(sum.load(Ordering::Relaxed), (0..n as u64).sum::<u64>());
    }

    #[test]
    fn scope_runs_every_task_once(
        task_count in 0usize..40,
        threads in 1usize..6,
    ) {
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicUsize> = (0..task_count).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for c in &counts {
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn simulated_makespan_bounds(
        durs_ms in prop::collection::vec(0u64..100, 1..80),
        threads in 1usize..16,
        schedule in schedule_strategy(),
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let sum: Duration = durs.iter().sum();
        let max = durs.iter().copied().max().unwrap_or_default();
        let m = loop_makespan(&durs, threads, schedule);
        // Fundamental scheduling bounds.
        prop_assert!(m <= sum);
        prop_assert!(m >= max);
        prop_assert!(m.as_nanos() * (threads as u128) >= sum.as_nanos());
        // One thread degenerates to the sum.
        prop_assert_eq!(loop_makespan(&durs, 1, schedule), sum);
    }

    #[test]
    fn more_threads_never_hurt_dynamic_schedules(
        durs_ms in prop::collection::vec(0u64..50, 1..60),
        threads in 1usize..8,
    ) {
        // Monotonicity holds for self-scheduling (dynamic chunk 1); static
        // chunking can have parity anomalies, so it is excluded by design.
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let a = loop_makespan(&durs, threads, Schedule::Dynamic(1));
        let b = loop_makespan(&durs, threads + 1, Schedule::Dynamic(1));
        prop_assert!(b <= a, "threads {} -> {:?}, {} -> {:?}", threads, a, threads + 1, b);
    }

    #[test]
    fn resource_bound_is_at_least_cpu_bound(
        durs_ms in prop::collection::vec(1u64..50, 1..60),
        threads in 1usize..16,
        beta in 0.0f64..1.0,
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let cpu = loop_makespan(&durs, threads, Schedule::Static);
        let bounded = resource_bounded_makespan(&durs, beta, threads, Schedule::Static);
        prop_assert!(bounded >= cpu);
        // And never more than the full sequential sum.
        let sum: Duration = durs.iter().sum();
        prop_assert!(bounded <= sum);
    }

    #[test]
    fn task_makespan_bounds(
        durs_ms in prop::collection::vec(0u64..100, 0..40),
        threads in 1usize..8,
    ) {
        let durs: Vec<Duration> = durs_ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let sum: Duration = durs.iter().sum();
        let max = durs.iter().copied().max().unwrap_or_default();
        let m = tasks_makespan(&durs, threads);
        prop_assert!(m <= sum);
        prop_assert!(m >= max);
        // Greedy list scheduling is within 2x of any schedule's optimum
        // (Graham's bound: makespan <= sum/p + max).
        let graham = Duration::from_nanos(
            (sum.as_nanos() / threads as u128) as u64
        ) + max;
        prop_assert!(m <= graham + Duration::from_nanos(1));
    }
}
