//! Property tests for the work-stealing deque the pool schedules on: the
//! owner's LIFO push/pop against a reference model, steal-side FIFO order,
//! and exactly-once delivery under concurrent stealers — the invariants
//! `ThreadPool` relies on to neither lose nor duplicate a DAG node.

use crossbeam::deque::{Injector, Steal, Worker};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// One scripted operation against the deque and its model.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Owner pushes the next fresh value.
    Push,
    /// Owner pops (LIFO — the model's back).
    Pop,
    /// A stealer steals (FIFO — the model's front).
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Pushes twice as likely as either consumer, so runs build real depth.
    (0u8..4).prop_map(|k| match k {
        0 | 1 => Op::Push,
        2 => Op::Pop,
        _ => Op::Steal,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequentially interleaved owner pops and steals agree with a
    /// double-ended queue model: the owner sees LIFO, the stealer FIFO,
    /// and both drain the same single copy of every pushed value.
    #[test]
    fn deque_matches_vecdeque_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let worker: Worker<u32> = Worker::new_lifo();
        let stealer = worker.stealer();
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                Op::Push => {
                    worker.push(next);
                    model.push_back(next);
                    next += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(worker.pop(), model.pop_back());
                }
                Op::Steal => {
                    // Sequentially there is no contention, so Retry cannot
                    // happen: the steal is Success or Empty, matching the
                    // model's front.
                    match (stealer.steal(), model.pop_front()) {
                        (Steal::Success(got), Some(want)) => prop_assert_eq!(got, want),
                        (Steal::Empty, None) => {}
                        (got, want) => prop_assert!(false, "steal {:?} vs model {:?}", got, want),
                    }
                }
            }
            prop_assert_eq!(worker.len(), model.len());
        }
        // Drain what's left owner-side: still exactly the model, in LIFO.
        while let Some(want) = model.pop_back() {
            prop_assert_eq!(worker.pop(), Some(want));
        }
        prop_assert!(worker.is_empty());
    }

    /// The injector is a plain FIFO when driven sequentially.
    #[test]
    fn injector_is_fifo(n in 0usize..200) {
        let inj: Injector<usize> = Injector::new();
        for i in 0..n {
            inj.push(i);
        }
        for i in 0..n {
            match inj.steal() {
                Steal::Success(got) => prop_assert_eq!(got, i),
                other => prop_assert!(false, "steal {:?} at {}", other, i),
            }
        }
        prop_assert!(inj.is_empty());
    }
}

/// Owner push/pop racing multiple stealers: every pushed value is consumed
/// exactly once, split arbitrarily between the owner and the thieves —
/// nothing lost, nothing duplicated. This is the scheduler's correctness
/// contract: a DAG node dispatched once runs once.
#[test]
fn concurrent_stealers_never_lose_or_duplicate() {
    const ITEMS: usize = 2_000;
    const STEALERS: usize = 3;
    for _round in 0..8 {
        let worker: Worker<usize> = Worker::new_lifo();
        let done = AtomicBool::new(false);
        let mut owner_got: Vec<usize> = Vec::new();
        let stolen: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..STEALERS)
                .map(|_| {
                    let stealer = worker.stealer();
                    let done = &done;
                    s.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match stealer.steal() {
                                Steal::Success(v) => got.push(v),
                                Steal::Empty if done.load(Ordering::Acquire) => break,
                                // Empty-but-not-done or contention (Retry):
                                // yield instead of spinning so the test
                                // stays fast on single-core hosts.
                                _ => std::thread::yield_now(),
                            }
                        }
                        got
                    })
                })
                .collect();
            // The owner interleaves pushes with occasional LIFO pops, like
            // a pool worker executing its own freshest work.
            for i in 0..ITEMS {
                worker.push(i);
                if i % 3 == 0 {
                    if let Some(v) = worker.pop() {
                        owner_got.push(v);
                    }
                }
            }
            while let Some(v) = worker.pop() {
                owner_got.push(v);
            }
            done.store(true, Ordering::Release);
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut seen = vec![0u32; ITEMS];
        for &v in owner_got.iter().chain(stolen.iter().flatten()) {
            seen[v] += 1;
        }
        let lost: Vec<usize> = (0..ITEMS).filter(|&i| seen[i] == 0).collect();
        let duped: Vec<usize> = (0..ITEMS).filter(|&i| seen[i] > 1).collect();
        assert!(lost.is_empty(), "lost items: {lost:?}");
        assert!(duped.is_empty(), "duplicated items: {duped:?}");

        // Steal-side FIFO: each thief's view of one owner's deque is
        // strictly increasing in push order (steals always take the oldest
        // surviving item).
        for (k, got) in stolen.iter().enumerate() {
            assert!(
                got.windows(2).all(|w| w[0] < w[1]),
                "stealer {k} saw out-of-order items: {got:?}"
            );
        }
    }
}

/// Concurrent producers into the injector, concurrent consumers out of it:
/// exactly-once delivery again, this time through the shared FIFO the pool
/// uses for roots and non-local successors.
#[test]
fn injector_concurrent_exactly_once() {
    const PER_PRODUCER: usize = 1_000;
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 3;
    let inj: Injector<usize> = Injector::new();
    let done = AtomicBool::new(false);
    let consumed: Vec<Vec<usize>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let inj = &inj;
                let done = &done;
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match inj.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty if done.load(Ordering::Acquire) => break,
                            _ => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let inj = &inj;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total = PRODUCERS * PER_PRODUCER;
    let mut seen = vec![0u32; total];
    for &v in consumed.iter().flatten() {
        seen[v] += 1;
    }
    assert!(seen.iter().all(|&c| c == 1), "delivery not exactly-once");
    // Per-producer FIFO: each consumer sees any one producer's items in
    // push order.
    for got in &consumed {
        for p in 0..PRODUCERS {
            let of_p: Vec<usize> = got
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == p)
                .collect();
            assert!(
                of_p.windows(2).all(|w| w[0] < w[1]),
                "producer {p} reordered: {of_p:?}"
            );
        }
    }
}
