//! Batch processing: the observatory's real workload — many events, one
//! catalog, one summary per event, network-level statistics.
//!
//! ```text
//! cargo run --release --example batch_processing
//! ```

use arp_core::{discover_batch, event_summary, run_batch, ImplKind, PipelineConfig, RunContext};
use arp_formats::{Catalog, CatalogEntry};
use arp_plot::Histogram;
use arp_synth::paper_event;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("arp-batch-ex-{}", std::process::id()));
    let batch_root = base.join("incoming");

    // 1. Stage three events as they would arrive from the field, and build
    //    the monthly catalog describing them.
    let mut catalog = Catalog::default();
    for (i, label) in ["nov18", "apr18", "jul19"].iter().enumerate() {
        let dir = batch_root.join(label);
        std::fs::create_dir_all(&dir)?;
        let event = paper_event(i, 0.02);
        arp_synth::write_event_inputs(&event, &dir)?;
        catalog.entries.push(CatalogEntry {
            id: label.to_string(),
            origin_time: event.origin_time.clone(),
            magnitude: event.source.magnitude,
            latitude: 13.7,
            longitude: -89.2,
            depth_km: 10.0 + 5.0 * i as f64,
            stations: event.stations.iter().map(|s| s.code.clone()).collect(),
        });
    }
    catalog.write(&base.join("catalog.txt"))?;
    println!("catalog: {} events", catalog.entries.len());

    // 2. Discover and process the whole batch.
    let items = discover_batch(&batch_root)?;
    let work_root = base.join("work");
    let report = run_batch(
        &items,
        &work_root,
        &PipelineConfig::default(),
        ImplKind::FullyParallel,
    )?;
    print!("\n{}", report.to_table());

    // 3. Per-event summaries + a network-wide PGA distribution.
    let mut all_pga = Vec::new();
    for item in &items {
        let ctx = RunContext::new(
            &item.input_dir,
            work_root.join(&item.label),
            PipelineConfig::default(),
        )?;
        let rows = event_summary(&ctx)?;
        let entry = catalog.find(&item.label).expect("cataloged");
        let max_pga = rows.iter().map(|r| r.pga).fold(0.0f64, f64::max);
        println!(
            "event {:<6} M{:.1} depth {:>4.1} km: {} component rows, max PGA {:8.2} cm/s²",
            entry.id,
            entry.magnitude,
            entry.depth_km,
            rows.len(),
            max_pga
        );
        all_pga.extend(rows.iter().map(|r| r.pga));
    }

    let hist = Histogram::from_samples(
        "Network PGA distribution (all events, all components)",
        "PGA (cm/s2)",
        &all_pga,
        12,
    );
    let (mode_bin, mode_count) = hist.mode_bin();
    println!(
        "\nPGA histogram: {} samples, fullest bin #{} holds {} components",
        hist.total(),
        mode_bin,
        mode_count
    );
    let out = base.join("pga-histogram.svg");
    std::fs::write(&out, hist.to_svg(640.0, 400.0))?;
    println!("wrote {}", out.display());

    Ok(())
}
