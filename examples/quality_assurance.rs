//! Quality-assurance tour: the extensions built around the paper's
//! pipeline — run verification, RotD orientation-independent measures,
//! STA/LTA onset detection, and the stage-timeline visualization.
//!
//! ```text
//! cargo run --release --example quality_assurance
//! ```

use arp_core::process::rotdgen::RotDFile;
use arp_core::{
    run_pipeline_labeled, timeline_svg, verify_run, ImplKind, PipelineConfig, RunContext,
};
use arp_dsp::trigger::{detect_triggers, StaLtaConfig};
use arp_formats::{names, Component, V1StationFile};
use arp_synth::{paper_event, write_event_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("arp-qa-{}", std::process::id()));
    let input_dir = base.join("inputs");
    std::fs::create_dir_all(&input_dir)?;
    let event = paper_event(1, 0.05); // Apr'18: 5 stations, larger records
    write_event_inputs(&event, &input_dir)?;

    // Run the pipeline with the RotD extension enabled.
    let config = PipelineConfig {
        emit_rotd: true,
        ..Default::default()
    };
    let work_dir = base.join("work");
    let ctx = RunContext::new(&input_dir, &work_dir, config)?;
    let report = run_pipeline_labeled(&ctx, ImplKind::FullyParallel, &event.id)?;
    println!("pipeline finished in {:?}", report.total);

    // 1. Verify the run: every product present and parseable.
    let issues = verify_run(&ctx)?;
    if issues.is_empty() {
        let stations = ctx.stations()?;
        println!(
            "verification: complete ({} artifacts across {} stations)",
            arp_core::expected_artifacts(&stations).len(),
            stations.len()
        );
    } else {
        for issue in &issues {
            eprintln!("verification issue: {issue}");
        }
        return Err(format!("{} verification issues", issues.len()).into());
    }

    // 2. RotD50/RotD100: orientation-independent spectral ordinates.
    println!("\nRotD spectral displacement (cm) at T = 1.0 s, 5% damping:");
    for station in ctx.stations()? {
        let rotd = RotDFile::read(&ctx.artifact(&RotDFile::file_name(&station)))?;
        let idx = rotd
            .periods
            .iter()
            .position(|&t| (t - 1.0).abs() < 1e-9)
            .expect("1.0 s is in the archived grid");
        println!(
            "  {station:<5} RotD50 {:8.4}   RotD100 {:8.4}   (ratio {:.2})",
            rotd.rotd50[idx],
            rotd.rotd100[idx],
            rotd.rotd100[idx] / rotd.rotd50[idx].max(1e-12)
        );
    }

    // 3. STA/LTA onset detection on the raw records: the synthetic events
    //    should look like real triggered records.
    println!("\nSTA/LTA onsets (raw longitudinal components):");
    let cfg = StaLtaConfig::default();
    for station in ctx.stations()? {
        let v1 = V1StationFile::read(&ctx.artifact(&names::v1_station(&station)))?;
        let (_, triple) = v1
            .components
            .iter()
            .find(|(c, _)| *c == Component::Longitudinal)
            .expect("longitudinal present");
        match detect_triggers(&triple.acc, v1.header.dt, &cfg) {
            Ok(triggers) if !triggers.is_empty() => println!(
                "  {station:<5} onset {:6.2} s  end {:6.2} s  peak ratio {:5.1}",
                triggers[0].onset, triggers[0].end, triggers[0].peak_ratio
            ),
            Ok(_) => println!("  {station:<5} no trigger (record too quiet/short)"),
            Err(e) => println!("  {station:<5} not analyzable: {e}"),
        }
    }

    // 4. Stage timeline: where the wall time went.
    let svg_path = base.join("timeline.svg");
    std::fs::write(&svg_path, timeline_svg(&report))?;
    println!("\nwrote stage timeline to {}", svg_path.display());

    Ok(())
}
