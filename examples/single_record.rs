//! Single-record walk-through: every DSP step the pipeline applies to one
//! component, with SVG figures mirroring the paper's Figs. 2–4.
//!
//! ```text
//! cargo run --release --example single_record
//! ```

use arp_dsp::baseline::{remove_baseline, Baseline};
use arp_dsp::fir::{BandPass, FirFilter};
use arp_dsp::inflection::{find_filter_corners, InflectionConfig};
use arp_dsp::integrate::acc_to_vel_disp;
use arp_dsp::peaks::{intensity_measures, peak_values};
use arp_dsp::respspec::{response_spectrum, standard_periods, ResponseMethod};
use arp_dsp::spectrum::fourier_spectrum;
use arp_dsp::window::{cosine_taper, WindowKind};
use arp_formats::Component;
use arp_plot::{Figure, LineChart, Scale, Series};
use arp_synth::{generate_component, EventSpec, SourceModel, StationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthesize one longitudinal component: M5.8 at 20 km, 100 sps, 80 s.
    let station = StationSpec {
        code: "SSLB".into(),
        distance_km: 20.0,
        dt: 0.01,
        npts: 8000,
        site: arp_synth::SiteClass::StiffSoil,
    };
    let event = EventSpec {
        id: "DEMO".into(),
        origin_time: "2019-07-31T03:04:05Z".into(),
        source: SourceModel {
            magnitude: 5.8,
            ..Default::default()
        },
        stations: vec![station.clone()],
        seed: 7,
    };
    let raw = generate_component(&event.source, &station, Component::Longitudinal, event.seed);
    let dt = station.dt;
    println!(
        "raw record: {} samples at {} sps",
        raw.len(),
        (1.0 / dt) as u32
    );

    // Step 1 — baseline correction and tapering (process #4 preamble).
    let mut acc = raw.clone();
    remove_baseline(&mut acc, Baseline::Linear)?;
    cosine_taper(&mut acc, 0.05);

    // Step 2 — default Hamming band-pass (process #4).
    let default_filter = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming)?;
    let acc_default = default_filter.apply_fft(&acc);

    // Step 3 — Fourier spectra (process #7) and FPL/FSL corners (process #10).
    let spectrum = fourier_spectrum(&acc_default, dt)?;
    let corners = find_filter_corners(&spectrum, &InflectionConfig::default())?;
    println!(
        "velocity-spectrum inflection at T = {:.2} s  ->  FSL = {:.3} Hz, FPL = {:.3} Hz",
        corners.inflection_period, corners.fsl, corners.fpl
    );

    // Step 4 — definitive correction with the recovered corners (process #13).
    let band = BandPass::DEFAULT.with_low_corners(corners.fsl, corners.fpl)?;
    let filter = FirFilter::band_pass(band, dt, WindowKind::Hamming)?;
    let corrected = filter.apply_fft(&acc);
    let (vel, disp) = acc_to_vel_disp(&corrected, dt)?;

    let peaks = peak_values(&corrected, dt)?;
    let im = intensity_measures(&corrected, dt)?;
    println!(
        "peaks: PGA {:.2} cm/s² (t={:.1}s)  PGV {:.3} cm/s  PGD {:.4} cm",
        peaks.pga, peaks.pga_time, peaks.pgv, peaks.pgd
    );
    println!(
        "intensity: Arias {:.4} cm/s  D5-95 {:.1} s  CAV {:.1} cm/s  aRMS {:.2} cm/s²",
        im.arias, im.duration_595, im.cav, im.arms
    );

    // Step 5 — response spectra (process #16).
    let periods = standard_periods();
    let rs = response_spectrum(
        &corrected,
        dt,
        &periods,
        0.05,
        ResponseMethod::NigamJennings,
    )?;
    let psa = rs.psa();
    let (pk, _) = psa
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "5%-damped PSA peaks at T = {:.2} s with {:.1} cm/s²",
        rs.periods[pk], psa[pk]
    );

    // Figures (paper Figs. 2-4 analogues) as SVG.
    let out = std::env::temp_dir().join(format!("arp-single-record-{}", std::process::id()));
    std::fs::create_dir_all(&out)?;
    let t: Vec<f64> = (0..corrected.len()).map(|i| i as f64 * dt).collect();

    let fig2 = Figure::new(vec![
        LineChart::new("Corrected acceleration")
            .labels("Time (s)", "cm/s2")
            .with_series(Series::from_xy("acc", &t, &corrected)),
        LineChart::new("Velocity")
            .labels("Time (s)", "cm/s")
            .with_series(Series::from_xy("vel", &t, &vel)),
        LineChart::new("Displacement")
            .labels("Time (s)", "cm")
            .with_series(Series::from_xy("disp", &t, &disp)),
    ]);
    std::fs::write(out.join("fig2-accelerogram.svg"), fig2.to_svg())?;

    let periods_axis = spectrum.periods();
    let fig3 = Figure::new(vec![LineChart::new(
        "Fourier spectra (velocity inflection sets FPL/FSL)",
    )
    .labels("Period (s)", "amplitude")
    .scales(Scale::Log10, Scale::Log10)
    .with_series(Series::from_xy(
        "acceleration",
        &periods_axis,
        &spectrum.acceleration,
    ))
    .with_series(Series::from_xy(
        "velocity",
        &periods_axis,
        &spectrum.velocity,
    ))
    .with_series(Series::from_xy(
        "displacement",
        &periods_axis,
        &spectrum.displacement,
    ))]);
    std::fs::write(out.join("fig3-fourier.svg"), fig3.to_svg())?;

    let fig4 = Figure::new(vec![LineChart::new("Response spectrum (5% damping)")
        .labels("Period (s)", "response")
        .scales(Scale::Log10, Scale::Log10)
        .with_series(Series::from_xy("SA", &rs.periods, &rs.sa))
        .with_series(Series::from_xy("SV", &rs.periods, &rs.sv))
        .with_series(Series::from_xy("SD", &rs.periods, &rs.sd))]);
    std::fs::write(out.join("fig4-response.svg"), fig4.to_svg())?;

    println!("\nwrote figures to {}", out.display());
    Ok(())
}
