//! Runs one event through all five pipeline implementations, verifies they
//! produce byte-identical final products, and prints the timing comparison
//! (a one-event slice of the paper's Table I).
//!
//! ```text
//! cargo run --release --example compare_implementations
//! ```

use arp_core::config::TimingModel;
use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{run_pipeline_labeled, ImplKind, PipelineConfig, RunContext};
use arp_synth::{paper_event, write_event_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let event = paper_event(2, 0.02); // Jul'19: 9 stations
    let base = std::env::temp_dir().join(format!("arp-compare-{}", std::process::id()));
    let input_dir = base.join("inputs");
    std::fs::create_dir_all(&input_dir)?;
    write_event_inputs(&event, &input_dir)?;

    // Simulate the paper's 8-core testbed so the comparison is meaningful
    // on any host.
    let config = PipelineConfig {
        timing: TimingModel::Simulated { threads: 8 },
        ..Default::default()
    };

    println!(
        "event {}: {} stations, {} data points\n",
        event.id,
        event.v1_file_count(),
        event.total_data_points()
    );
    println!("{:<22} {:>12} {:>14}", "implementation", "time", "speedup");

    let mut baseline = None;
    let mut reference_snapshot = None;
    for kind in ImplKind::ALL {
        let work = base.join(format!("work-{}", kind.label().replace([' ', '.'], "")));
        let ctx = RunContext::new(&input_dir, &work, config.clone())?;
        let report = run_pipeline_labeled(&ctx, kind, &event.id)?;

        let snap = snapshot(&work)?;
        match &reference_snapshot {
            None => reference_snapshot = Some(snap),
            Some(reference) => {
                let diffs = diff_snapshots(reference, &snap);
                assert!(
                    diffs.is_empty(),
                    "{} diverged from the original outputs: {diffs:?}",
                    kind.label()
                );
            }
        }

        let secs = report.total.as_secs_f64();
        let speedup = match baseline {
            None => {
                baseline = Some(secs);
                1.0
            }
            Some(b) => b / secs,
        };
        println!("{:<22} {:>10.3} s {:>13.2}x", kind.label(), secs, speedup);
    }

    println!("\nall five implementations produced byte-identical final products ✓");
    std::fs::remove_dir_all(&base)?;
    Ok(())
}
