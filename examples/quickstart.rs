//! Quickstart: synthesize a seismic event, run the fully parallelized
//! pipeline on it, and inspect the products.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use arp_core::{run_pipeline_labeled, ImplKind, PipelineConfig, RunContext};
use arp_formats::{names, Component, MaxValues, RFile, V2File};
use arp_synth::{paper_event, write_event_inputs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize the paper's smallest event (Nov'18: 5 stations) at 2%
    //    of its data volume so the example runs in seconds.
    let event = paper_event(0, 0.02);
    let base = std::env::temp_dir().join(format!("arp-quickstart-{}", std::process::id()));
    let input_dir = base.join("inputs");
    std::fs::create_dir_all(&input_dir)?;
    let files = write_event_inputs(&event, &input_dir)?;
    println!(
        "synthesized {} V1 station files ({} data points)",
        files.len(),
        event.total_data_points()
    );

    // 2. Run the fully parallelized pipeline.
    let work_dir = base.join("work");
    let ctx = RunContext::new(&input_dir, &work_dir, PipelineConfig::default())?;
    let report = run_pipeline_labeled(&ctx, ImplKind::FullyParallel, &event.id)?;
    println!(
        "pipeline finished in {:?} ({:.0} points/s)",
        report.total,
        report.throughput()
    );

    // 3. Inspect the products.
    let max_values = MaxValues::read(&ctx.artifact(MaxValues::FILE_NAME))?;
    println!("\npeak ground motion per component:");
    for e in &max_values.entries {
        println!(
            "  {:<5} {}  PGA {:8.3} cm/s²  PGV {:7.4} cm/s  PGD {:7.4} cm",
            e.station,
            e.component.code(),
            e.pga,
            e.pgv,
            e.pgd
        );
    }

    let station = &ctx.stations()?[0];
    let v2 = V2File::read(&ctx.artifact(&names::v2_component(station, Component::Longitudinal)))?;
    println!(
        "\nstation {station}: definitive band-pass corners fsl={:.3} fpl={:.3} Hz",
        v2.band.fsl, v2.band.fpl
    );

    let r = RFile::read(&ctx.artifact(&names::r_component(station, Component::Longitudinal)))?;
    let spec = r.at_damping(0.05).expect("5% damping archived");
    let (peak_idx, peak_sa) = spec
        .sa
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "response spectrum peak: SA = {peak_sa:.2} cm/s² at T = {:.2} s (5% damping)",
        spec.periods[peak_idx]
    );

    println!(
        "\nall artifacts (V2/F/R/GEM/PostScript plots) are in {}",
        work_dir.display()
    );
    Ok(())
}
