//! Scheduling laboratory: the `arp-par` OpenMP-style runtime and its
//! deterministic simulator, side by side.
//!
//! Demonstrates (1) real parallel loops under static/dynamic/guided
//! schedules, (2) task scopes, and (3) the virtual-time scheduler used by
//! the pipeline's simulated-timing mode, including the disk-contention
//! bound that limits I/O-stage scaling.
//!
//! ```text
//! cargo run --release --example scheduling_lab
//! ```

use arp_par::{loop_makespan, resource_bounded_makespan, tasks_makespan, Schedule, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn busy_work(units: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..units * 20_000 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn main() {
    let pool = ThreadPool::new(4);
    println!("pool with {} worker threads\n", pool.threads());

    // 1. Real parallel loops: skewed work under each schedule.
    println!("-- real parallel_for over 64 skewed units --");
    for schedule in [Schedule::Static, Schedule::Dynamic(1), Schedule::Guided(1)] {
        let sink = AtomicU64::new(0);
        let t0 = Instant::now();
        pool.parallel_for(0..64, schedule, |i| {
            // Unit 0 is 30x heavier than the rest (skew favors dynamic).
            let units = if i == 0 { 30 } else { 1 };
            sink.fetch_add(busy_work(units), Ordering::Relaxed);
        });
        println!("{schedule:?}: {:?}", t0.elapsed());
    }

    // 2. Task scope: the paper's Stage XI (three heterogeneous plot tasks).
    println!("\n-- task scope (3 heterogeneous tasks) --");
    let mut results = [0u64; 3];
    {
        let [a, b, c] = &mut results;
        pool.scope(|s| {
            s.spawn(|| *a = busy_work(10));
            s.spawn(|| *b = busy_work(20));
            s.spawn(|| *c = busy_work(5));
        });
    }
    println!("all tasks completed: checksums {results:?}");

    // 3. The virtual-time scheduler: what a 64-unit loop costs on 1..16
    //    virtual processors under each schedule.
    println!("\n-- simulated makespans (64 units, one 30x straggler) --");
    let durations: Vec<Duration> = (0..64)
        .map(|i| Duration::from_millis(if i == 0 { 300 } else { 10 }))
        .collect();
    println!(
        "{:<10} {:>8} {:>9} {:>9}",
        "threads", "static", "dynamic", "guided"
    );
    for threads in [1usize, 2, 4, 8, 16] {
        let st = loop_makespan(&durations, threads, Schedule::Static);
        let dy = loop_makespan(&durations, threads, Schedule::Dynamic(1));
        let gu = loop_makespan(&durations, threads, Schedule::Guided(1));
        println!(
            "{threads:<10} {:>7.0}ms {:>8.0}ms {:>8.0}ms",
            st.as_secs_f64() * 1e3,
            dy.as_secs_f64() * 1e3,
            gu.as_secs_f64() * 1e3
        );
    }

    // 4. The disk-contention bound: why the pipeline's I/O stages plateau.
    println!("\n-- disk-bound loop (serial fraction 0.6) vs pure compute --");
    let uniform: Vec<Duration> = vec![Duration::from_millis(10); 64];
    println!("{:<10} {:>9} {:>12}", "threads", "compute", "60% on disk");
    for threads in [1usize, 2, 4, 8, 16] {
        let cpu = resource_bounded_makespan(&uniform, 0.0, threads, Schedule::Static);
        let io = resource_bounded_makespan(&uniform, 0.6, threads, Schedule::Static);
        println!(
            "{threads:<10} {:>8.0}ms {:>11.0}ms",
            cpu.as_secs_f64() * 1e3,
            io.as_secs_f64() * 1e3
        );
    }

    // 5. Task list-scheduling, as used for the metadata stages.
    let task_durs = [
        Duration::from_millis(9),
        Duration::from_millis(4),
        Duration::from_millis(4),
        Duration::from_millis(2),
    ];
    println!(
        "\n4 tasks (9/4/4/2 ms) on 2 virtual threads: makespan {:?} (greedy list schedule)",
        tasks_makespan(&task_durs, 2)
    );
}
